//! Curated operator profiles (the paper's Table 3 + Table 1).
//!
//! One entry per operator: its ASNs as curated by the paper (67 in
//! total), the access technology its website advertises, whether it
//! deploys Performance Enhancing Proxies, and how many NDT speed tests
//! the paper ultimately attributed to it (Table 1; zero for the 23
//! operators that never survive the filters).
//!
//! One ASN in the paper's Table 3 is illegible in the public PDF (the
//! Lepton/Kymeta row); we assign the synthetic AS394478 and note it here.

use sno_types::{AccessKind, Asn, Operator, OrbitClass};

/// Everything the workspace knows about one operator a-priori.
#[derive(Debug, Clone)]
pub struct SnoProfile {
    /// The operator.
    pub operator: Operator,
    /// Its ASNs (Table 3).
    pub asns: &'static [u32],
    /// Advertised access technology (curated from the website).
    pub access: AccessKind,
    /// Does it deploy split-connection PEPs? (HughesNet, Viasat,
    /// Eutelsat and Avanti do, per the paper's footnote 1.)
    pub uses_pep: bool,
    /// Registered organisation name.
    pub org: &'static str,
    /// Website used in the manual curation step.
    pub website: &'static str,
    /// Country of AS registration.
    pub country: &'static str,
    /// Present in the ASdb "Satellite Communication" category? The paper
    /// found Starlink and Viasat *missing* and recovered them via
    /// Hurricane Electric.
    pub in_asdb: bool,
    /// Number of NDT tests attributed in Table 1 (full scale; 0 = the
    /// operator never survives the filters).
    pub mlab_tests: u64,
}

const GEO: AccessKind = AccessKind::Satellite(OrbitClass::Geo);
const LEO: AccessKind = AccessKind::Satellite(OrbitClass::Leo);
const MEO: AccessKind = AccessKind::Satellite(OrbitClass::Meo);

/// All 41 operator profiles, Table 3 order.
pub const PROFILES: &[SnoProfile] = &[
    SnoProfile {
        operator: Operator::Arqiva,
        asns: &[15641],
        access: GEO,
        uses_pep: false,
        org: "Arqiva Ltd",
        website: "arqiva.com",
        country: "GB",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Avanti,
        asns: &[39356],
        access: GEO,
        uses_pep: true,
        org: "Avanti Communications",
        website: "avantiplc.com",
        country: "GB",
        in_asdb: true,
        mlab_tests: 122,
    },
    SnoProfile {
        operator: Operator::Awv,
        asns: &[46869],
        access: GEO,
        uses_pep: false,
        org: "AWV Communications",
        website: "awv.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Colinanet,
        asns: &[262168],
        access: GEO,
        uses_pep: false,
        org: "ColinaNet",
        website: "colinanet.com",
        country: "BR",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Comsat,
        asns: &[36614],
        access: GEO,
        uses_pep: false,
        org: "Comsat Inc",
        website: "comsat.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::ComsatPng,
        asns: &[136940],
        access: GEO,
        uses_pep: false,
        org: "Comsat PNG",
        website: "comsat.com.pg",
        country: "PG",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Comtech,
        asns: &[394318],
        access: GEO,
        uses_pep: false,
        org: "Comtech Telecom",
        website: "comtech.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Elara,
        asns: &[262927],
        access: GEO,
        uses_pep: false,
        org: "Elara Comunicaciones",
        website: "elara.mx",
        country: "MX",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Eutelsat,
        asns: &[204276, 34444],
        access: GEO,
        uses_pep: true,
        org: "Eutelsat SA",
        website: "eutelsat.com",
        country: "FR",
        in_asdb: true,
        mlab_tests: 235,
    },
    SnoProfile {
        operator: Operator::Globalsat,
        asns: &[15829, 28503],
        access: GEO,
        uses_pep: false,
        org: "GlobalSat",
        website: "globalsat.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 135,
    },
    SnoProfile {
        operator: Operator::Gravity,
        asns: &[131202],
        access: GEO,
        uses_pep: false,
        org: "Gravity Internet",
        website: "gravity.net.id",
        country: "ID",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::HellasSat,
        asns: &[41697],
        access: GEO,
        uses_pep: false,
        org: "Hellas Sat",
        website: "hellas-sat.net",
        country: "GR",
        in_asdb: true,
        mlab_tests: 48,
    },
    SnoProfile {
        operator: Operator::Hughes,
        asns: &[28613, 1358, 63062, 12440, 44795, 6621],
        access: GEO,
        uses_pep: true,
        org: "Hughes Network Systems",
        website: "hughes.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 2_800,
    },
    SnoProfile {
        operator: Operator::Intelsat,
        asns: &[26243, 46982],
        access: GEO,
        uses_pep: false,
        org: "Intelsat US LLC",
        website: "intelsat.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 91,
    },
    SnoProfile {
        operator: Operator::Io,
        asns: &[17411],
        access: GEO,
        uses_pep: false,
        org: "IO Satellite",
        website: "io-sat.com",
        country: "SG",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Isotropic,
        asns: &[36426],
        access: GEO,
        uses_pep: false,
        org: "Isotropic Networks",
        website: "isotropic.network",
        country: "US",
        in_asdb: true,
        mlab_tests: 35,
    },
    SnoProfile {
        operator: Operator::Kacific,
        asns: &[135409],
        access: GEO,
        uses_pep: false,
        org: "Kacific Broadband Satellites",
        website: "kacific.com",
        country: "SG",
        in_asdb: true,
        mlab_tests: 34,
    },
    SnoProfile {
        operator: Operator::Kvh,
        asns: &[25687, 20304],
        access: GEO,
        uses_pep: false,
        org: "KVH Industries",
        website: "kvh.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 951,
    },
    SnoProfile {
        operator: Operator::Lepton,
        asns: &[394478],
        access: GEO,
        uses_pep: false,
        org: "Lepton Global (Kymeta)",
        website: "leptonglobal.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Linkexpress,
        asns: &[20660],
        access: GEO,
        uses_pep: false,
        org: "LinkExpress",
        website: "linkexpress.net",
        country: "RU",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Marlink,
        asns: &[5377, 44933, 55784, 8841, 210314, 8264, 37101],
        access: GEO,
        uses_pep: false,
        org: "Marlink AS",
        website: "marlink.com",
        country: "NO",
        in_asdb: true,
        mlab_tests: 1_420,
    },
    SnoProfile {
        operator: Operator::Maxar,
        asns: &[393938],
        access: GEO,
        uses_pep: false,
        org: "Maxar Technologies",
        website: "maxar.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Navarino,
        asns: &[203101],
        access: GEO,
        uses_pep: false,
        org: "Navarino UK",
        website: "navarino.co.uk",
        country: "GB",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Netsat,
        asns: &[133933],
        access: GEO,
        uses_pep: false,
        org: "NetSat",
        website: "netsat.net",
        country: "IN",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::NetworkInnovations,
        asns: &[1821],
        access: GEO,
        uses_pep: false,
        org: "Network Innovations",
        website: "networkinv.com",
        country: "CA",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::NomadGlobal,
        asns: &[395786],
        access: GEO,
        uses_pep: false,
        org: "Nomad Global Communications",
        website: "nomadgcs.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::O3b,
        asns: &[60725],
        access: MEO,
        uses_pep: false,
        org: "O3b Networks (SES)",
        website: "o3bnetworks.com",
        country: "LU",
        in_asdb: true,
        mlab_tests: 78_100,
    },
    SnoProfile {
        operator: Operator::Oneweb,
        asns: &[800],
        access: LEO,
        uses_pep: false,
        org: "OneWeb Ltd",
        website: "oneweb.net",
        country: "GB",
        in_asdb: true,
        mlab_tests: 2_950,
    },
    SnoProfile {
        operator: Operator::Panasonic,
        asns: &[64294],
        access: GEO,
        uses_pep: false,
        org: "Panasonic Avionics",
        website: "panasonic.aero",
        country: "US",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Ses,
        asns: &[201554, 12684],
        access: AccessKind::MeoGeo,
        uses_pep: false,
        org: "SES SA",
        website: "ses.com",
        country: "LU",
        in_asdb: true,
        mlab_tests: 23_200,
    },
    SnoProfile {
        operator: Operator::SoundAndCellular,
        asns: &[63215],
        access: GEO,
        uses_pep: false,
        org: "Sound & Cellular",
        website: "soundandcellular.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Speedcast,
        asns: &[38456],
        access: GEO,
        uses_pep: false,
        org: "Speedcast International",
        website: "speedcast.com",
        country: "AU",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Ssi,
        asns: &[22684],
        access: GEO,
        uses_pep: false,
        org: "SSi Micro",
        website: "ssimicro.com",
        country: "CA",
        in_asdb: true,
        mlab_tests: 260,
    },
    SnoProfile {
        operator: Operator::Starlink,
        asns: &[14593, 27277],
        access: LEO,
        uses_pep: false,
        org: "Space Exploration Technologies",
        website: "starlink.com",
        country: "US",
        in_asdb: false,
        mlab_tests: 11_700_000,
    },
    SnoProfile {
        operator: Operator::Telalaska,
        asns: &[10538],
        access: GEO,
        uses_pep: false,
        org: "TelAlaska Inc",
        website: "telalaska.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 3_050,
    },
    SnoProfile {
        operator: Operator::Telesat,
        asns: &[19036],
        access: GEO,
        uses_pep: false,
        org: "Telesat Canada",
        website: "telesat.com",
        country: "CA",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Televera,
        asns: &[265515],
        access: GEO,
        uses_pep: false,
        org: "Televera Red",
        website: "televera.mx",
        country: "MX",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Thaicom,
        asns: &[63951],
        access: GEO,
        uses_pep: false,
        org: "Thaicom PLC",
        website: "thaicom.net",
        country: "TH",
        in_asdb: true,
        mlab_tests: 0,
    },
    SnoProfile {
        operator: Operator::Ultisat,
        asns: &[393439],
        access: GEO,
        uses_pep: false,
        org: "UltiSat Inc",
        website: "ultisat.com",
        country: "US",
        in_asdb: true,
        mlab_tests: 37,
    },
    SnoProfile {
        operator: Operator::Viasat,
        asns: &[
            13955, 25222, 46536, 18570, 16491, 40306, 7155, 40310, 23354, 31515,
        ],
        access: GEO,
        uses_pep: true,
        org: "ViaSat Inc",
        website: "viasat.com",
        country: "US",
        in_asdb: false,
        mlab_tests: 50_000,
    },
    SnoProfile {
        operator: Operator::Worldlink,
        asns: &[11902],
        access: GEO,
        uses_pep: false,
        org: "WorldLink Communications",
        website: "worldlink.com.np",
        country: "US",
        in_asdb: true,
        mlab_tests: 0,
    },
];

/// The profile of one operator.
pub fn profile_of(op: Operator) -> &'static SnoProfile {
    PROFILES
        .iter()
        .find(|p| p.operator == op)
        // sno-lint: allow(unwrap-in-lib): PROFILES statically covers Operator::ALL (profile_coverage test)
        .expect("every operator has a profile")
}

/// The operator owning `asn`, if any.
pub fn operator_of_asn(asn: Asn) -> Option<Operator> {
    PROFILES
        .iter()
        .find(|p| p.asns.contains(&asn.0))
        .map(|p| p.operator)
}

/// The 18 operators that appear in Table 1 (non-zero M-Lab volume),
/// ordered by volume descending.
pub fn table1_operators() -> Vec<&'static SnoProfile> {
    let mut v: Vec<_> = PROFILES.iter().filter(|p| p.mlab_tests > 0).collect();
    v.sort_by_key(|p| std::cmp::Reverse(p.mlab_tests));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn sixty_seven_asns_over_forty_one_operators() {
        assert_eq!(PROFILES.len(), 41);
        let all: Vec<u32> = PROFILES
            .iter()
            .flat_map(|p| p.asns.iter().copied())
            .collect();
        assert_eq!(all.len(), 67, "Table 3 lists 67 ASNs");
        let set: BTreeSet<u32> = all.iter().copied().collect();
        assert_eq!(set.len(), 67, "ASNs must be unique");
    }

    #[test]
    fn every_operator_has_exactly_one_profile() {
        for op in Operator::ALL {
            assert_eq!(
                PROFILES.iter().filter(|p| p.operator == op).count(),
                1,
                "{op}"
            );
        }
    }

    #[test]
    fn eighteen_operators_in_table1() {
        let t1 = table1_operators();
        assert_eq!(t1.len(), 18);
        assert_eq!(t1[0].operator, Operator::Starlink);
        assert_eq!(t1[0].mlab_tests, 11_700_000);
        assert_eq!(t1.last().unwrap().operator, Operator::Kacific);
        assert_eq!(t1.last().unwrap().mlab_tests, 34);
    }

    #[test]
    fn orbit_census_matches_paper() {
        // Table 1: 2 LEO, 1 MEO, 15 GEO (SES counted as GEO here since
        // O3b carries the MEO side).
        let t1 = table1_operators();
        let leo = t1
            .iter()
            .filter(|p| p.access == AccessKind::Satellite(OrbitClass::Leo))
            .count();
        let meo = t1
            .iter()
            .filter(|p| p.access == AccessKind::Satellite(OrbitClass::Meo))
            .count();
        assert_eq!(leo, 2);
        assert_eq!(meo, 1);
        assert_eq!(t1.len() - leo - meo - 1, 14); // 14 pure GEO + SES(MeoGeo)
    }

    #[test]
    fn pep_operators_match_footnote() {
        let pep: BTreeSet<_> = PROFILES
            .iter()
            .filter(|p| p.uses_pep)
            .map(|p| p.operator)
            .collect();
        let expected: BTreeSet<_> = [
            Operator::Hughes,
            Operator::Viasat,
            Operator::Eutelsat,
            Operator::Avanti,
        ]
        .into_iter()
        .collect();
        assert_eq!(pep, expected);
    }

    #[test]
    fn starlink_and_viasat_missing_from_asdb() {
        assert!(!profile_of(Operator::Starlink).in_asdb);
        assert!(!profile_of(Operator::Viasat).in_asdb);
        assert!(profile_of(Operator::Hughes).in_asdb);
    }

    #[test]
    fn asn_reverse_lookup() {
        assert_eq!(operator_of_asn(Asn(14593)), Some(Operator::Starlink));
        assert_eq!(operator_of_asn(Asn(27277)), Some(Operator::Starlink));
        assert_eq!(operator_of_asn(Asn(60725)), Some(Operator::O3b));
        assert_eq!(operator_of_asn(Asn(10538)), Some(Operator::Telalaska));
        assert_eq!(operator_of_asn(Asn(3356)), None, "Level3 is not an SNO");
    }

    #[test]
    fn mlab_volumes_match_table1() {
        let checks = [
            (Operator::O3b, 78_100),
            (Operator::Viasat, 50_000),
            (Operator::Ses, 23_200),
            (Operator::Telalaska, 3_050),
            (Operator::Oneweb, 2_950),
            (Operator::Hughes, 2_800),
            (Operator::Marlink, 1_420),
            (Operator::Kvh, 951),
            (Operator::Ssi, 260),
            (Operator::Eutelsat, 235),
            (Operator::Globalsat, 135),
            (Operator::Avanti, 122),
            (Operator::Intelsat, 91),
            (Operator::HellasSat, 48),
            (Operator::Ultisat, 37),
            (Operator::Isotropic, 35),
        ];
        for (op, n) in checks {
            assert_eq!(profile_of(op).mlab_tests, n, "{op}");
        }
    }
}
