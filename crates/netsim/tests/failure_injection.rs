//! Failure injection for the transport substrate: flows over dying,
//! flapping, saturated and pathological paths must terminate with sane
//! accounting — silence (a hang or a panic) is the only wrong answer.

use sno_netsim::path::{PathDynamics, StaticPath};
use sno_netsim::pep::PepMode;
use sno_netsim::tcp::{TcpConfig, TcpFlow};
use sno_types::Rng;

/// A path that dies permanently at `dies_at` seconds.
struct DyingPath {
    inner: StaticPath,
    dies_at: f64,
}

impl PathDynamics for DyingPath {
    fn base_rtt_ms(&self, t: f64) -> Option<f64> {
        (t < self.dies_at).then_some(self.inner.rtt_ms)
    }
    fn loss_prob(&self, t: f64) -> f64 {
        self.inner.loss_prob(t)
    }
    fn bottleneck_mbps(&self) -> f64 {
        self.inner.bottleneck_mbps()
    }
}

/// A path that flaps: up for `up_secs`, down for `down_secs`, repeating.
struct FlappingPath {
    inner: StaticPath,
    up_secs: f64,
    down_secs: f64,
}

impl PathDynamics for FlappingPath {
    fn base_rtt_ms(&self, t: f64) -> Option<f64> {
        let phase = t % (self.up_secs + self.down_secs);
        (phase < self.up_secs).then_some(self.inner.rtt_ms)
    }
    fn loss_prob(&self, t: f64) -> f64 {
        self.inner.loss_prob(t)
    }
    fn bottleneck_mbps(&self) -> f64 {
        self.inner.bottleneck_mbps()
    }
}

fn run(path: &dyn PathDynamics, seed: u64) -> sno_netsim::tcp::TcpStats {
    TcpFlow::new(TcpConfig::ndt()).run(path, 0.0, &mut Rng::new(seed))
}

#[test]
fn mid_flow_death_stops_delivery() {
    let path = DyingPath {
        inner: StaticPath::clean(40.0, 50.0),
        dies_at: 3.0,
    };
    let stats = run(&path, 1);
    assert!(stats.bytes_acked > 0, "delivered something before death");
    assert!(stats.timeouts > 0, "timers fired after death");
    // RTO backoff must cover the remaining window without spinning.
    assert!(stats.duration_secs >= 10.0 - 1e-9);
    // Nothing delivered after the cut: throughput reflects ~3 s of a
    // 10 s flow.
    let full = run(&StaticPath::clean(40.0, 50.0), 1);
    assert!(stats.bytes_acked < full.bytes_acked / 2);
}

#[test]
fn flapping_path_delivers_between_outages() {
    let path = FlappingPath {
        inner: StaticPath::clean(50.0, 50.0),
        up_secs: 2.0,
        down_secs: 2.0,
    };
    let stats = run(&path, 2);
    assert!(stats.bytes_acked > 0);
    assert!(stats.timeouts >= 1, "each outage costs at least one RTO");
    let steady = run(&StaticPath::clean(50.0, 50.0), 2);
    assert!(
        stats.bytes_acked < steady.bytes_acked,
        "flapping must cost goodput"
    );
}

#[test]
fn total_loss_is_a_livelock_free_zero() {
    let path = StaticPath {
        rtt_ms: 100.0,
        loss: 1.0,
        rate_mbps: 10.0,
        buffer_ms: 100.0,
    };
    let stats = run(&path, 3);
    assert_eq!(stats.bytes_acked, 0);
    assert!(stats.bytes_retrans > 0);
    assert!(stats.retrans_fraction() >= 0.99);
}

#[test]
fn tiny_bottleneck_still_progresses() {
    // 64 kbps: a couple of packets per second.
    let path = StaticPath::clean(200.0, 0.064);
    let stats = run(&path, 4);
    assert!(stats.bytes_acked > 0);
    assert!(
        stats.mean_throughput().0 <= 0.08,
        "{}",
        stats.mean_throughput()
    );
}

#[test]
fn absurdly_long_rtt_terminates() {
    // RTT longer than the whole test: one round, then the clock is done.
    let path = StaticPath::clean(30_000.0, 10.0);
    let stats = run(&path, 5);
    assert!(stats.rtt_samples.len() <= 2);
    assert!(!stats.completed);
}

#[test]
fn pep_cannot_resurrect_a_dead_path() {
    let path = DyingPath {
        inner: StaticPath::clean(600.0, 20.0),
        dies_at: 0.0,
    };
    let stats = TcpFlow::new(TcpConfig {
        pep: PepMode::typical(),
        ..TcpConfig::ndt()
    })
    .run(&path, 0.0, &mut Rng::new(6));
    assert_eq!(stats.bytes_acked, 0);
    assert!(stats.timeouts > 0);
}

#[test]
fn byte_limited_flow_over_flapping_path_eventually_completes_or_gives_up() {
    let path = FlappingPath {
        inner: StaticPath::clean(50.0, 20.0),
        up_secs: 1.0,
        down_secs: 0.5,
    };
    let cfg = TcpConfig {
        byte_limit: 2_000_000,
        max_duration_secs: 60.0,
        ..TcpConfig::ndt()
    };
    let stats = TcpFlow::new(cfg).run(&path, 0.0, &mut Rng::new(7));
    assert!(stats.completed, "2 MB over a mostly-up path within 60 s");
    assert!(stats.bytes_acked >= 2_000_000);
}

#[test]
fn traceroute_with_total_packet_loss_reports_unreached() {
    use sno_netsim::traceroute::{HopSpec, TracerouteEngine};
    use sno_types::records::RootServer;
    use sno_types::{Ipv4, Millis, ProbeId, Timestamp};
    let engine = TracerouteEngine {
        hops: vec![HopSpec {
            addr: Ipv4::new(10, 0, 0, 1),
            rtt: Millis(5.0),
        }],
        noise_ms: 1.0,
        unreachable_prob: 1.0,
    };
    let rec = engine.measure(ProbeId(1), Timestamp(0), RootServer::A, &mut Rng::new(8));
    assert!(!rec.reached);
    assert!(rec.hops.is_empty(), "single-hop path: nothing answers");
    assert_eq!(rec.end_to_end_rtt(), None);
}
