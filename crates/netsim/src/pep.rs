//! Performance Enhancing Proxy (split-connection) model.
//!
//! GEO operators such as HughesNet, Viasat, Eutelsat and Avanti terminate
//! subscriber TCP connections at a proxy on each side of the bent-pipe
//! link (RFC 3135). Two effects matter for the traces:
//!
//! 1. **Local loss recovery** — frames lost on the satellite segment are
//!    retransmitted by the link layer between the proxies, invisibly to
//!    the end-to-end TCP connection. The server-side `TCP_Info` therefore
//!    records almost no retransmissions (Figure 4c's "GEO (PEP)" curve
//!    hugging the LEO curve).
//! 2. **ACK spoofing** — the local proxy acknowledges data immediately,
//!    so the sender's congestion window grows at terrestrial-RTT cadence
//!    instead of once per 600 ms satellite round trip.

/// Whether (and how) a PEP sits on the path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PepMode {
    /// No proxy: TCP runs end-to-end over the satellite path.
    None,
    /// Split connection with the given parameters.
    SplitConnection(PepParams),
}

/// Tuning of a split-connection PEP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PepParams {
    /// Fraction of satellite-segment losses that still leak through to
    /// the end-to-end connection (local ARQ is not perfect).
    pub residual_loss_factor: f64,
    /// RTT of the sender-to-proxy segment, ms — sets the cadence at
    /// which the spoofed-ACK window grows.
    pub local_rtt_ms: f64,
}

impl PepParams {
    /// A typical consumer-GEO deployment: local ARQ recovers all but a
    /// sliver (0.1 %) of satellite-segment losses before the end-to-end
    /// connection notices; the sender-side segment is 40 ms of
    /// terrestrial path.
    pub const TYPICAL: PepParams = PepParams {
        residual_loss_factor: 0.001,
        local_rtt_ms: 40.0,
    };
}

impl PepMode {
    /// A typical split-connection PEP.
    pub fn typical() -> PepMode {
        PepMode::SplitConnection(PepParams::TYPICAL)
    }

    /// Effective end-to-end random loss given the raw satellite-segment
    /// loss probability.
    pub fn effective_loss(&self, raw: f64) -> f64 {
        match self {
            PepMode::None => raw,
            PepMode::SplitConnection(p) => raw * p.residual_loss_factor,
        }
    }

    /// How many window-growth steps happen per satellite RTT: 1 without
    /// a proxy, `sat_rtt / local_rtt` (at least 1) with one.
    pub fn growth_steps(&self, sat_rtt_ms: f64) -> u32 {
        match self {
            PepMode::None => 1,
            PepMode::SplitConnection(p) => (sat_rtt_ms / p.local_rtt_ms).floor().max(1.0) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_pep_is_identity() {
        let m = PepMode::None;
        assert_eq!(m.effective_loss(0.02), 0.02);
        assert_eq!(m.growth_steps(600.0), 1);
    }

    #[test]
    fn pep_suppresses_loss() {
        let m = PepMode::typical();
        let eff = m.effective_loss(0.02);
        assert!((eff - 2e-5).abs() < 1e-12, "eff {eff}");
    }

    #[test]
    fn pep_accelerates_growth_on_long_paths() {
        let m = PepMode::typical();
        assert_eq!(m.growth_steps(600.0), 15);
        assert_eq!(m.growth_steps(40.0), 1);
        // Never below one step even on very short paths.
        assert_eq!(m.growth_steps(10.0), 1);
    }
}
