//! Event-driven network simulation substrate.
//!
//! The measurement traces the paper mines are produced by transport
//! protocols running over satellite paths. This crate provides those
//! mechanisms:
//!
//! * [`event`] — a deterministic discrete-event queue (time-ordered,
//!   FIFO within a timestamp);
//! * [`path`] — the [`path::PathDynamics`] abstraction: base RTT, loss,
//!   bottleneck rate and handoff generation as functions of time, plus
//!   simple built-in paths for tests and composition helpers;
//! * [`tcp`] — a round-based TCP Reno flow model with slow start,
//!   congestion avoidance, fast retransmit, RFC 6298 retransmission
//!   timeouts, DropTail queueing at the bottleneck (bufferbloat), and
//!   TCP_Info-style RTT polling — the engine behind every synthetic NDT
//!   speed test;
//! * [`pep`] — the split-connection Performance Enhancing Proxy model
//!   that explains Figure 4c's "GEO (PEP)" retransmission curve;
//! * [`traceroute`] — hop-by-hop path probing that produces RIPE-style
//!   traceroute records;
//! * [`dns`] — a recursive-resolver lookup-time model;
//! * [`terrestrial`] — fibre-path RTT estimates between surface points;
//! * [`sim`] — deterministic fault-injection simulation: seeded fault
//!   schedules overlaid on any path, invariant checkers, and the
//!   parallel seed-sweep campaign behind `repro --sim-sweep`.

pub mod dns;
pub mod event;
pub mod path;
pub mod pep;
pub mod sim;
pub mod tcp;
pub mod terrestrial;
pub mod traceroute;

pub use dns::DnsResolver;
pub use event::{EventQueue, SimTime};
pub use path::{PathDynamics, StaticPath};
pub use pep::PepMode;
pub use sim::{run_seed, run_sweep, SeedReport, SweepConfig, SweepReport};
pub use tcp::{TcpConfig, TcpFlow, TcpStats};
pub use terrestrial::terrestrial_rtt;
pub use traceroute::{HopSpec, TracerouteEngine};
