//! Conservation and sanity invariants the simulation sweep asserts.
//!
//! Each checker records how many assertions it evaluated and collects
//! [`Violation`]s instead of panicking, so a sweep can report *every*
//! broken invariant for a seed rather than the first one. The
//! invariants fall in two families:
//!
//! * **conservation** — exact bookkeeping identities the mechanisms must
//!   satisfy for any input: packet accounting (`sent == delivered +
//!   lost`), PEP byte accounting (visible retransmissions never exceed
//!   actual losses, and equal them without a proxy), congestion-window
//!   bounds, event-queue conservation and time monotonicity, traceroute
//!   TTL/RTT monotonicity;
//! * **paper envelopes** — loose, shape-level bounds from the paper's
//!   findings: the GEO bent-pipe RTT floor, and the retransmission-rate
//!   ordering GEO-without-PEP > GEO-with-PEP (Figure 4c).

use crate::path::PathDynamics;
use crate::pep::PepMode;
use crate::tcp::{TcpConfig, TcpStats};
use crate::traceroute::HopSpec;
use sno_types::records::TracerouteRecord;

/// Physical floor for a bent-pipe GEO round trip (2 × ~35 786 km up and
/// down at c, plus terrestrial overhead keeps real paths above this).
pub const GEO_RTT_FLOOR_MS: f64 = 450.0;

/// One broken invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant identifier (kebab-case).
    pub invariant: &'static str,
    /// What exactly went wrong, with the offending numbers.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Collects invariant evaluations and their failures.
#[derive(Debug, Default)]
pub struct Checker {
    /// Assertions evaluated so far.
    pub checks: u32,
    /// Assertions that failed.
    pub violations: Vec<Violation>,
}

impl Checker {
    /// An empty checker.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Record one assertion; `detail` is only rendered on failure.
    pub fn check(&mut self, invariant: &'static str, ok: bool, detail: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations.push(Violation {
                invariant,
                detail: detail(),
            });
        }
    }

    /// Exact packet/byte conservation for one finished flow, including
    /// the PEP split-connection accounting and the cwnd bound.
    pub fn flow_accounting(&mut self, label: &str, cfg: &TcpConfig, stats: &TcpStats) {
        self.check(
            "packet-conservation",
            stats.pkts_sent == stats.pkts_delivered + stats.pkts_lost,
            || {
                format!(
                    "{label}: sent {} != delivered {} + lost {}",
                    stats.pkts_sent, stats.pkts_delivered, stats.pkts_lost
                )
            },
        );
        self.check(
            "pep-byte-accounting",
            stats.pkts_retrans_visible <= stats.pkts_lost,
            || {
                format!(
                    "{label}: visible retransmissions {} exceed losses {}",
                    stats.pkts_retrans_visible, stats.pkts_lost
                )
            },
        );
        if cfg.pep == PepMode::None {
            self.check(
                "pep-byte-accounting",
                stats.pkts_retrans_visible == stats.pkts_lost,
                || {
                    format!(
                        "{label}: without a PEP every loss must surface ({} visible vs {} lost)",
                        stats.pkts_retrans_visible, stats.pkts_lost
                    )
                },
            );
        }
        self.check(
            "pep-byte-accounting",
            stats.bytes_retrans == stats.pkts_retrans_visible * u64::from(cfg.mss),
            || {
                format!(
                    "{label}: bytes_retrans {} != visible pkts {} x mss {}",
                    stats.bytes_retrans, stats.pkts_retrans_visible, cfg.mss
                )
            },
        );
        let cwnd_cap = cfg.max_cwnd.max(cfg.initial_cwnd);
        self.check(
            "cwnd-bounds",
            stats.max_cwnd_observed <= cwnd_cap + 1e-9,
            || {
                format!(
                    "{label}: cwnd reached {} above cap {cwnd_cap}",
                    stats.max_cwnd_observed
                )
            },
        );
        self.check("byte-limit", stats.bytes_acked <= cfg.byte_limit, || {
            format!(
                "{label}: acked {} past the byte limit {}",
                stats.bytes_acked, cfg.byte_limit
            )
        });
        // The loop may overshoot its deadline by at most the last RTO
        // (bounded by max_rto_ms) plus one round.
        let duration_cap = cfg.max_duration_secs + cfg.max_rto_ms / 1_000.0 + 60.0;
        self.check(
            "flow-terminates",
            stats.completed || stats.duration_secs <= duration_cap,
            || {
                format!(
                    "{label}: ran {}s past the {duration_cap}s cap",
                    stats.duration_secs
                )
            },
        );
        self.check(
            "rtt-samples-finite",
            stats.rtt_samples.iter().all(|r| r.is_finite() && *r > 0.0),
            || format!("{label}: non-finite or non-positive RTT sample"),
        );
    }

    /// RTT-poll envelope: every sample at or above the path floor (the
    /// model clamps noise at half the unloaded RTT) and the session p5
    /// near the floor rather than the bloated ceiling.
    pub fn rtt_envelope(&mut self, label: &str, stats: &TcpStats, floor_ms: f64) {
        self.check(
            "rtt-floor",
            stats.rtt_samples.iter().all(|&r| r >= 0.45 * floor_ms),
            || {
                let min = stats
                    .rtt_samples
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                format!("{label}: RTT sample {min} under floor {floor_ms}")
            },
        );
        if let Some(p5) = stats.latency_p5() {
            self.check("rtt-floor", p5.0 >= 0.8 * floor_ms, || {
                format!("{label}: latency p5 {p5} under 0.8 x floor {floor_ms}")
            });
        }
    }

    /// Figure 4c's ordering: a split-connection PEP must suppress most
    /// end-to-end retransmissions relative to the same path without one.
    pub fn retrans_ordering(&mut self, label: &str, plain: &TcpStats, pepped: &TcpStats) {
        let p = plain.retrans_fraction();
        let q = pepped.retrans_fraction();
        self.check("retrans-ordering", q <= 0.5 * p + 0.01, || {
            format!("{label}: PEP retrans {q:.4} not well under plain {p:.4}")
        });
    }

    /// Event-queue conservation after a drain: everything scheduled was
    /// popped exactly once and the pop times never went backwards.
    pub fn queue_conservation(
        &mut self,
        label: &str,
        scheduled: u64,
        popped: u64,
        pending: usize,
        pop_times_us: &[u64],
    ) {
        self.check(
            "event-conservation",
            popped + pending as u64 == scheduled,
            || format!("{label}: popped {popped} + pending {pending} != scheduled {scheduled}"),
        );
        self.check(
            "event-time-monotone",
            pop_times_us.windows(2).all(|w| w[0] <= w[1]),
            || format!("{label}: event times regressed: {pop_times_us:?}"),
        );
    }

    /// Traceroute shape: hops appear in TTL order with non-negative
    /// RTTs, never more hops than the declared path, the full path
    /// exactly when the destination answered, and each hop's RTT no
    /// lower than the floor established by the previous hop (the
    /// monotone-TTL envelope the engine guarantees).
    pub fn traceroute_shape(&mut self, label: &str, spec: &[HopSpec], rec: &TracerouteRecord) {
        self.check(
            "traceroute-ttl-monotone",
            rec.hops.len() <= spec.len(),
            || {
                format!(
                    "{label}: {} hops answered on a {}-hop path",
                    rec.hops.len(),
                    spec.len()
                )
            },
        );
        self.check(
            "traceroute-ttl-monotone",
            !rec.reached || rec.hops.len() == spec.len(),
            || format!("{label}: reached but only {} hops recorded", rec.hops.len()),
        );
        self.check(
            "traceroute-rtt-sane",
            rec.hops
                .iter()
                .all(|h| h.rtt.0 >= 0.0 && h.rtt.0.is_finite()),
            || format!("{label}: negative or non-finite hop RTT"),
        );
        let monotone =
            rec.hops.windows(2).zip(spec).all(|(pair, prev_spec)| {
                pair[1].rtt.0 + 1e-9 >= pair[0].rtt.0.min(prev_spec.rtt.0)
            });
        self.check("traceroute-ttl-monotone", monotone, || {
            format!("{label}: cumulative RTT dipped below the previous hop's floor")
        });
    }

    /// Fair-share conservation at a shared bottleneck: the flows cannot
    /// collectively deliver more than the link carries (small slack for
    /// the fluid model's rounding).
    pub fn bottleneck_conservation(&mut self, label: &str, total_mbps: f64, flows: &[TcpStats]) {
        let sum: f64 = flows.iter().map(|s| s.mean_throughput().0).sum();
        self.check(
            "bottleneck-conservation",
            sum <= total_mbps * 1.10 + 0.5,
            || format!("{label}: flows sum to {sum:.2} Mbps over a {total_mbps:.2} Mbps link"),
        );
    }

    /// Path sanity sampled along a time grid: generation monotone, loss
    /// a probability, RTT positive/finite outside outages.
    pub fn path_sanity(&mut self, label: &str, path: &dyn PathDynamics, horizon_secs: f64) {
        let steps = 256;
        let mut last_gen = 0u64;
        let mut gen_ok = true;
        let mut loss_ok = true;
        let mut rtt_ok = true;
        for i in 0..=steps {
            let t = horizon_secs * i as f64 / steps as f64;
            let g = path.generation(t);
            if i > 0 && g < last_gen {
                gen_ok = false;
            }
            last_gen = g;
            if !(0.0..=1.0).contains(&path.loss_prob(t)) {
                loss_ok = false;
            }
            if let Some(rtt) = path.base_rtt_ms(t) {
                if !(rtt.is_finite() && rtt > 0.0) {
                    rtt_ok = false;
                }
            }
        }
        self.check("generation-monotone", gen_ok, || {
            format!("{label}: serving generation went backwards")
        });
        self.check("loss-is-probability", loss_ok, || {
            format!("{label}: loss probability left [0, 1]")
        });
        self.check("rtt-positive", rtt_ok, || {
            format!("{label}: non-finite or non-positive base RTT")
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::StaticPath;
    use crate::tcp::TcpFlow;
    use sno_types::Rng;

    fn stats(pep: PepMode, seed: u64) -> (TcpConfig, TcpStats) {
        let cfg = TcpConfig {
            pep,
            ..TcpConfig::ndt()
        };
        let path = StaticPath {
            rtt_ms: 550.0,
            loss: 0.02,
            rate_mbps: 20.0,
            buffer_ms: 250.0,
        };
        let s = TcpFlow::new(cfg.clone()).run(&path, 0.0, &mut Rng::new(seed));
        (cfg, s)
    }

    #[test]
    fn healthy_flow_passes_all_checks() {
        let mut c = Checker::new();
        let (cfg, s) = stats(PepMode::None, 1);
        c.flow_accounting("plain", &cfg, &s);
        c.rtt_envelope("plain", &s, 550.0);
        assert!(c.violations.is_empty(), "{:?}", c.violations);
        assert!(c.checks >= 8);
    }

    #[test]
    fn retrans_ordering_holds_for_the_pep() {
        let mut c = Checker::new();
        let (_, plain) = stats(PepMode::None, 2);
        let (_, pepped) = stats(PepMode::typical(), 2);
        c.retrans_ordering("geo", &plain, &pepped);
        assert!(c.violations.is_empty(), "{:?}", c.violations);
    }

    #[test]
    fn corrupted_accounting_is_caught() {
        let mut c = Checker::new();
        let (cfg, mut s) = stats(PepMode::None, 3);
        s.pkts_delivered += 7; // break conservation
        c.flow_accounting("broken", &cfg, &s);
        assert!(c
            .violations
            .iter()
            .any(|v| v.invariant == "packet-conservation"));
    }

    #[test]
    fn pep_leak_is_caught() {
        let mut c = Checker::new();
        let (cfg, mut s) = stats(PepMode::typical(), 4);
        s.pkts_retrans_visible = s.pkts_lost + 1; // proxy "invented" a loss
        c.flow_accounting("leak", &cfg, &s);
        assert!(c
            .violations
            .iter()
            .any(|v| v.invariant == "pep-byte-accounting"));
    }

    #[test]
    fn queue_conservation_catches_lost_events() {
        let mut c = Checker::new();
        c.queue_conservation("q", 10, 9, 0, &[1, 2, 3]);
        assert_eq!(c.violations.len(), 1);
        assert_eq!(c.violations[0].invariant, "event-conservation");
        let mut c = Checker::new();
        c.queue_conservation("q", 10, 10, 0, &[1, 3, 2]);
        assert_eq!(c.violations[0].invariant, "event-time-monotone");
    }

    #[test]
    fn violation_display_is_greppable() {
        let v = Violation {
            invariant: "cwnd-bounds",
            detail: "flow x: cwnd reached 9000 above cap 4096".to_string(),
        };
        assert_eq!(
            v.to_string(),
            "cwnd-bounds: flow x: cwnd reached 9000 above cap 4096"
        );
    }
}
