//! One seed's worth of deterministic fault-injection simulation.
//!
//! [`run_seed`] derives every scenario of the campaign from a single
//! `u64` — GEO with/without PEP, LEO handover churn, outage windows,
//! multi-flow contention on a shared bottleneck, and a PoP migration
//! with traceroute probing — and evaluates the full invariant suite
//! (see [`super::invariants`]) on everything the scenarios produce.
//! All randomness flows through labelled substreams of the seed
//! ([`Rng::substream_named`] per scenario, [`Rng::substream_shard`] per
//! flow), so a failing seed replays bit-identically with
//! `repro --sim-sweep --seed <S>`.

use super::faults::{FaultProfile, FaultSchedule, FaultyPath, PopMigration};
use super::invariants::{Checker, Violation, GEO_RTT_FLOOR_MS};
use crate::event::{EventQueue, SimTime};
use crate::path::StaticPath;
use crate::pep::PepMode;
use crate::tcp::{TcpConfig, TcpFlow, TcpStats};
use crate::traceroute::{HopSpec, TracerouteEngine};
use sno_types::records::RootServer;
use sno_types::{Ipv4, Millis, ProbeId, Rng, Timestamp};

/// The outcome of one simulated seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedReport {
    /// The seed that generated everything below.
    pub seed: u64,
    /// Invariant assertions evaluated.
    pub checks: u32,
    /// Assertions that failed (empty = the seed passed).
    pub violations: Vec<Violation>,
    /// One stable metrics line per scenario — byte-identical across
    /// runs and thread counts, which is what the determinism suite
    /// pins.
    pub summary: Vec<String>,
}

impl SeedReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The one-line sweep row for this seed.
    pub fn render_line(&self) -> String {
        if self.passed() {
            format!("seed {:>10}  ok    ({} checks)", self.seed, self.checks)
        } else {
            format!(
                "seed {:>10}  FAIL  ({} checks, {} violated): {}",
                self.seed,
                self.checks,
                self.violations.len(),
                self.violations[0]
            )
        }
    }
}

/// Flow duration for a scenario, seconds.
fn flow_secs(quick: bool) -> f64 {
    if quick {
        4.0
    } else {
        10.0
    }
}

/// Run every scenario for `seed` and collect the invariant verdicts.
pub fn run_seed(seed: u64, quick: bool) -> SeedReport {
    let root = Rng::new(seed);
    let mut checker = Checker::new();
    let mut summary = Vec::new();

    geo_pep_scenario(&root, quick, &mut checker, &mut summary);
    leo_handover_scenario(&root, quick, &mut checker, &mut summary);
    outage_scenario(&root, quick, &mut checker, &mut summary);
    contention_scenario(&root, quick, &mut checker, &mut summary);
    migration_scenario(&root, quick, &mut checker, &mut summary);

    SeedReport {
        seed,
        checks: checker.checks,
        violations: checker.violations,
        summary,
    }
}

/// GEO bent-pipe path, with and without a split-connection PEP: the
/// paper's Figure 4c arms. Asserts accounting on both, the GEO RTT
/// floor, and the retransmission ordering.
fn geo_pep_scenario(root: &Rng, quick: bool, checker: &mut Checker, summary: &mut Vec<String>) {
    let mut rng = root.substream_named("geo");
    let path = StaticPath {
        rtt_ms: rng.range_f64(490.0, 640.0),
        loss: rng.range_f64(0.01, 0.04),
        rate_mbps: rng.range_f64(10.0, 40.0),
        buffer_ms: rng.range_f64(200.0, 400.0),
    };
    let cfg = TcpConfig {
        max_duration_secs: flow_secs(quick),
        ..TcpConfig::ndt()
    };
    let pep_cfg = TcpConfig {
        pep: PepMode::typical(),
        ..cfg.clone()
    };
    let plain = TcpFlow::new(cfg.clone()).run(&path, 0.0, &mut rng.substream_named("plain"));
    let pepped = TcpFlow::new(pep_cfg.clone()).run(&path, 0.0, &mut rng.substream_named("pep"));

    checker.flow_accounting("geo/plain", &cfg, &plain);
    checker.flow_accounting("geo/pep", &pep_cfg, &pepped);
    checker.rtt_envelope("geo/plain", &plain, path.rtt_ms);
    checker.rtt_envelope("geo/pep", &pepped, path.rtt_ms);
    checker.retrans_ordering("geo", &plain, &pepped);
    if let Some(p5) = plain.latency_p5() {
        checker.check("geo-rtt-floor", p5.0 >= GEO_RTT_FLOOR_MS, || {
            format!("geo/plain: latency p5 {p5} under the bent-pipe floor {GEO_RTT_FLOOR_MS} ms")
        });
    }
    summary.push(format!(
        "geo rtt={:.3} loss={:.5} plain_retx={:.6} pep_retx={:.6}",
        path.rtt_ms,
        path.loss,
        plain.retrans_fraction(),
        pepped.retrans_fraction()
    ));
}

/// LEO path under handover churn from a generated fault schedule.
fn leo_handover_scenario(
    root: &Rng,
    quick: bool,
    checker: &mut Checker,
    summary: &mut Vec<String>,
) {
    let mut rng = root.substream_named("leo");
    let horizon = flow_secs(quick);
    let profile = FaultProfile {
        handover_interval_secs: Some(rng.range_f64(1.0, 3.0)),
        handover_offset_ms: rng.range_f64(4.0, 15.0),
        outage_rate_per_min: 0.0,
        ..FaultProfile::leo()
    };
    let schedule = FaultSchedule::generate(&mut rng.substream_named("faults"), &profile, horizon);
    checker.check(
        "schedule-structure",
        schedule.structural_problems().is_empty(),
        || format!("leo: {:?}", schedule.structural_problems()),
    );
    let base = StaticPath {
        rtt_ms: rng.range_f64(40.0, 65.0),
        loss: rng.range_f64(0.001, 0.01),
        rate_mbps: rng.range_f64(80.0, 200.0),
        buffer_ms: 60.0,
    };
    let handovers = schedule.handovers.len();
    let path = FaultyPath {
        base: base.clone(),
        schedule,
    };
    checker.path_sanity("leo", &path, horizon);
    let cfg = TcpConfig {
        max_duration_secs: horizon,
        ..TcpConfig::ndt()
    };
    let stats = TcpFlow::new(cfg.clone()).run(&path, 0.0, &mut rng.substream_named("flow"));
    checker.flow_accounting("leo", &cfg, &stats);
    // Handover offsets are zero-mean, so the envelope floor is the base
    // RTT lowered by the deepest negative offset in this schedule.
    let min_offset = path
        .schedule
        .handovers
        .iter()
        .map(|h| h.offset_ms)
        .fold(0.0, f64::min);
    checker.rtt_envelope("leo", &stats, (base.rtt_ms + min_offset).max(1.0));
    summary.push(format!(
        "leo rtt={:.3} handovers={handovers} jitter_p95={:.6}",
        base.rtt_ms,
        stats.jitter_p95().map_or(0.0, |j| j.0)
    ));
}

/// Link outages mid-flow: the retransmission timer must fire, the flow
/// must still terminate, and accounting must survive the gap.
fn outage_scenario(root: &Rng, quick: bool, checker: &mut Checker, summary: &mut Vec<String>) {
    let mut rng = root.substream_named("outage");
    let horizon = flow_secs(quick);
    // Short-RTT base so every round is much shorter than the outage —
    // the flow cannot step over the window.
    let base = StaticPath {
        rtt_ms: rng.range_f64(40.0, 70.0),
        loss: rng.range_f64(0.0, 0.005),
        rate_mbps: rng.range_f64(30.0, 120.0),
        buffer_ms: 80.0,
    };
    let schedule = FaultSchedule {
        outages: vec![super::faults::OutageWindow {
            start_secs: rng.range_f64(1.0, horizon * 0.5),
            duration_secs: rng.range_f64(0.6, 2.0),
        }],
        horizon_secs: horizon,
        ..FaultSchedule::default()
    };
    let outage = schedule.outages[0];
    let path = FaultyPath { base, schedule };
    let cfg = TcpConfig {
        max_duration_secs: horizon,
        ..TcpConfig::ndt()
    };
    let stats = TcpFlow::new(cfg.clone()).run(&path, 0.0, &mut rng.substream_named("flow"));
    checker.flow_accounting("outage", &cfg, &stats);
    checker.check("outage-detected", stats.timeouts >= 1, || {
        format!(
            "outage: {:.2}s window at t={:.2}s fired no retransmission timeout",
            outage.duration_secs, outage.start_secs
        )
    });
    checker.check("outage-predates-delivery", stats.bytes_acked > 0, || {
        "outage: flow delivered nothing despite >=1s of clean link before the window".to_string()
    });
    summary.push(format!(
        "outage at={:.3} dur={:.3} timeouts={} acked={}",
        outage.start_secs, outage.duration_secs, stats.timeouts, stats.bytes_acked
    ));
}

/// Flow-start events for the contention scenario.
#[derive(Debug, PartialEq, Eq)]
struct FlowStart(usize);

/// Multi-flow contention on a shared bottleneck, with flow starts
/// staggered through the discrete-event queue. Asserts event-queue
/// conservation and fair-share throughput conservation.
fn contention_scenario(root: &Rng, quick: bool, checker: &mut Checker, summary: &mut Vec<String>) {
    let mut rng = root.substream_named("contention");
    let flows = if quick {
        rng.range_u64(2, 3) as usize
    } else {
        rng.range_u64(2, 6) as usize
    };
    let total_mbps = rng.range_f64(20.0, 100.0);
    let rtt_ms = rng.range_f64(30.0, 90.0);
    let loss = rng.range_f64(0.0, 0.01);
    let horizon = flow_secs(quick);

    let mut queue: EventQueue<FlowStart> = EventQueue::new();
    for i in 0..flows {
        let at = SimTime::from_millis(rng.range_f64(0.0, 500.0));
        queue.schedule(at, FlowStart(i));
    }

    // Fluid fair share: each flow sees an equal slice of the link for
    // its whole lifetime.
    let share = StaticPath {
        rtt_ms,
        loss,
        rate_mbps: total_mbps / flows as f64,
        buffer_ms: 100.0,
    };
    let cfg = TcpConfig {
        max_duration_secs: horizon,
        ..TcpConfig::ndt()
    };
    let mut pop_times = Vec::with_capacity(flows);
    let mut stats: Vec<TcpStats> = Vec::with_capacity(flows);
    while let Some(peek) = queue.peek_time() {
        let Some((at, FlowStart(i))) = queue.pop() else {
            break;
        };
        checker.check("event-time-monotone", peek == at, || {
            format!("contention: peeked {peek:?} but popped {at:?}")
        });
        pop_times.push(at.0);
        let mut flow_rng = rng.substream_named("flow").substream_shard(i);
        stats.push(TcpFlow::new(cfg.clone()).run(&share, at.as_secs(), &mut flow_rng));
    }
    checker.queue_conservation(
        "contention",
        queue.scheduled(),
        queue.popped(),
        queue.len(),
        &pop_times,
    );
    for (i, s) in stats.iter().enumerate() {
        checker.flow_accounting(&format!("contention/{i}"), &cfg, s);
    }
    checker.bottleneck_conservation("contention", total_mbps, &stats);
    let sum: f64 = stats.iter().map(|s| s.mean_throughput().0).sum();
    summary.push(format!(
        "contention flows={flows} link={total_mbps:.3} sum_tput={sum:.6}"
    ));
}

/// A PoP migration mid-window: the path's RTT shifts persistently, the
/// flow's RTT polls must move with it, and traceroutes through the new
/// PoP must keep their TTL/RTT shape.
fn migration_scenario(root: &Rng, quick: bool, checker: &mut Checker, summary: &mut Vec<String>) {
    let mut rng = root.substream_named("pop-migration");
    let horizon = flow_secs(quick);
    let base_rtt = rng.range_f64(40.0, 60.0);
    let delta = {
        let magnitude = rng.range_f64(25.0, 60.0);
        if rng.chance(0.5) {
            magnitude
        } else {
            -magnitude
        }
    };
    let at_secs = horizon * rng.range_f64(0.4, 0.6);
    let schedule = FaultSchedule {
        migrations: vec![PopMigration {
            at_secs,
            delta_ms: delta,
        }],
        horizon_secs: horizon,
        ..FaultSchedule::default()
    };
    // Huge rate + modest cwnd cap keeps the bottleneck queue empty, so
    // the RTT polls isolate the migration step.
    let path = FaultyPath {
        base: StaticPath {
            rtt_ms: base_rtt,
            loss: 0.0,
            rate_mbps: 2_000.0,
            buffer_ms: 100.0,
        },
        schedule,
    };
    checker.path_sanity("pop-migration", &path, horizon);
    let cfg = TcpConfig {
        max_duration_secs: horizon,
        rtt_noise_ms: 0.5,
        ..TcpConfig::ndt()
    };
    let stats = TcpFlow::new(cfg.clone()).run(&path, 0.0, &mut rng.substream_named("flow"));
    checker.flow_accounting("pop-migration", &cfg, &stats);

    // RTT polls straddling the migration must move with it. Rounds are
    // RTT-paced, so sample *indices* are not time-proportional (a big
    // negative delta packs most samples after the step); compare small
    // windows at the two ends instead, which sit strictly before and
    // after a mid-horizon migration. The expected step is the delta
    // after the path's 1 ms RTT clamp; a third of it is ample margin
    // for 0.5 ms noise plus post-step queueing.
    let n = stats.rtt_samples.len();
    if n >= 16 {
        let k = (n / 4).min(8);
        let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        let pre = mean(&stats.rtt_samples[..k]);
        let post = mean(&stats.rtt_samples[n - k..]);
        let observed = post - pre;
        let effective = (base_rtt + delta).max(1.0) - base_rtt;
        checker.check(
            "pop-migration-shift",
            observed.signum() == effective.signum() && observed.abs() >= effective.abs() / 3.0,
            || {
                format!(
                    "pop-migration: injected {effective:.1} ms but RTT polls moved {observed:.1} ms"
                )
            },
        );
    }

    // Traceroutes through the post-migration path: CGNAT hop, PoP hop,
    // transit, destination — cumulative spec RTTs reflect the new PoP.
    let pop_rtt = (base_rtt + delta.max(-base_rtt * 0.5)).max(5.0);
    let spec = vec![
        HopSpec {
            addr: Ipv4::new(192, 168, 1, 1),
            rtt: Millis(1.0),
        },
        HopSpec {
            addr: Ipv4::CGNAT_GATEWAY,
            rtt: Millis(pop_rtt),
        },
        HopSpec {
            addr: Ipv4::new(206, 224, 64, 1),
            rtt: Millis(pop_rtt + rng.range_f64(2.0, 8.0)),
        },
        HopSpec {
            addr: Ipv4::new(193, 0, 14, 129),
            rtt: Millis(pop_rtt + rng.range_f64(8.0, 25.0)),
        },
    ];
    let engine = TracerouteEngine::new(spec.clone());
    let mut trace_rng = rng.substream_named("traceroute");
    let measurements = if quick { 10 } else { 30 };
    let mut reached = 0u32;
    for k in 0..measurements as u64 {
        let rec = engine.measure(ProbeId(1), Timestamp(k * 60), RootServer::K, &mut trace_rng);
        checker.traceroute_shape("pop-migration", &spec, &rec);
        reached += u32::from(rec.reached);
    }
    summary.push(format!(
        "pop-migration delta={delta:.3} at={at_secs:.3} reached={reached}/{measurements}"
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_pass_and_replay_identically() {
        for seed in [1, 2, 0x5A7E_1117] {
            let a = run_seed(seed, true);
            assert!(a.passed(), "seed {seed}: {:?}", a.violations);
            assert!(a.checks > 40, "only {} checks ran", a.checks);
            let b = run_seed(seed, true);
            assert_eq!(a, b, "seed {seed} did not replay identically");
        }
    }

    #[test]
    fn different_seeds_explore_different_scenarios() {
        let a = run_seed(10, true);
        let b = run_seed(11, true);
        assert_ne!(a.summary, b.summary);
    }

    #[test]
    fn render_line_marks_pass_and_fail() {
        let mut report = run_seed(3, true);
        assert!(report.render_line().contains("ok"));
        report.violations.push(Violation {
            invariant: "cwnd-bounds",
            detail: "synthetic".to_string(),
        });
        assert!(report.render_line().contains("FAIL"));
        assert!(report.render_line().contains("cwnd-bounds"));
    }
}
