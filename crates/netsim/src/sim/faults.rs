//! Seeded fault schedules and the path wrapper that applies them.
//!
//! A [`FaultSchedule`] is a precomputed, fully deterministic list of the
//! disturbances a satellite path suffers over a simulation horizon:
//! total link outages (rain fade, obstruction), loss bursts (weather
//! attenuation short of an outage), handover-induced RTT steps (the
//! serving satellite changed, so the bent-pipe geometry did too), and
//! PoP migrations (the operator re-homed the terminal to a different
//! ground station — Section 5's Sydney→Auckland class of event, which
//! shifts RTT *persistently*). Schedules are generated from an
//! [`Rng`] substream, so the same seed always produces the same faults.
//!
//! [`FaultyPath`] overlays a schedule on any base [`PathDynamics`]; the
//! transport model underneath needs no changes and cannot tell injected
//! faults from modelled ones.

use crate::path::PathDynamics;
use sno_types::Rng;

/// A window with no connectivity at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageWindow {
    /// Outage onset, seconds.
    pub start_secs: f64,
    /// Outage length, seconds.
    pub duration_secs: f64,
}

impl OutageWindow {
    /// Whether `t_secs` falls inside the window.
    pub fn contains(&self, t_secs: f64) -> bool {
        t_secs >= self.start_secs && t_secs < self.start_secs + self.duration_secs
    }
}

/// A window of elevated random loss (attenuation short of an outage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossBurst {
    /// Burst onset, seconds.
    pub start_secs: f64,
    /// Burst length, seconds.
    pub duration_secs: f64,
    /// Extra per-packet loss probability while active.
    pub extra_loss: f64,
}

/// A handover: from `at_secs` until the next handover the path's RTT is
/// offset by `offset_ms` (the new serving satellite sits at a different
/// slant range), and the serving generation increments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Handover {
    /// Handover instant, seconds.
    pub at_secs: f64,
    /// RTT offset while this satellite serves, ms (may be negative).
    pub offset_ms: f64,
}

/// A PoP migration: a *persistent* RTT shift from `at_secs` onward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopMigration {
    /// Migration instant, seconds.
    pub at_secs: f64,
    /// Permanent RTT delta, ms (negative = the new PoP is closer).
    pub delta_ms: f64,
}

/// How often and how hard a schedule disturbs the path.
#[derive(Debug, Clone)]
pub struct FaultProfile {
    /// Mean outages per minute (Poisson arrivals; `0.0` = none).
    pub outage_rate_per_min: f64,
    /// Outage duration range, seconds.
    pub outage_secs: (f64, f64),
    /// Mean loss bursts per minute.
    pub burst_rate_per_min: f64,
    /// Burst duration range, seconds.
    pub burst_secs: (f64, f64),
    /// Extra loss range during a burst.
    pub burst_loss: (f64, f64),
    /// Mean seconds between handovers (`None` = no handovers — GEO).
    pub handover_interval_secs: Option<f64>,
    /// Standard deviation of the per-handover RTT offset, ms.
    pub handover_offset_ms: f64,
    /// Extra first-round loss applied after a handover or migration.
    pub handoff_loss: f64,
    /// Number of PoP migrations over the horizon.
    pub migrations: u32,
    /// Magnitude range of a migration's RTT delta, ms (sign is random).
    pub migration_delta_ms: (f64, f64),
}

impl FaultProfile {
    /// A quiet profile: no injected faults at all.
    pub fn quiet() -> FaultProfile {
        FaultProfile {
            outage_rate_per_min: 0.0,
            outage_secs: (0.0, 0.0),
            burst_rate_per_min: 0.0,
            burst_secs: (0.0, 0.0),
            burst_loss: (0.0, 0.0),
            handover_interval_secs: None,
            handover_offset_ms: 0.0,
            handoff_loss: 0.0,
            migrations: 0,
            migration_delta_ms: (0.0, 0.0),
        }
    }

    /// LEO-flavoured faults: frequent handovers with small RTT steps,
    /// occasional short obstruction outages.
    pub fn leo() -> FaultProfile {
        FaultProfile {
            outage_rate_per_min: 0.5,
            outage_secs: (0.5, 2.0),
            burst_rate_per_min: 1.0,
            burst_secs: (1.0, 3.0),
            burst_loss: (0.01, 0.05),
            handover_interval_secs: Some(15.0),
            handover_offset_ms: 8.0,
            handoff_loss: 0.1,
            migrations: 0,
            migration_delta_ms: (0.0, 0.0),
        }
    }

    /// GEO-flavoured faults: no handovers, but weather windows with
    /// heavy attenuation and the occasional full fade.
    pub fn geo_weather() -> FaultProfile {
        FaultProfile {
            outage_rate_per_min: 0.2,
            outage_secs: (1.0, 4.0),
            burst_rate_per_min: 1.5,
            burst_secs: (2.0, 6.0),
            burst_loss: (0.02, 0.10),
            handover_interval_secs: None,
            handover_offset_ms: 0.0,
            handoff_loss: 0.0,
            migrations: 0,
            migration_delta_ms: (0.0, 0.0),
        }
    }
}

/// A deterministic fault schedule over a fixed horizon.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    /// Total-outage windows, sorted by onset.
    pub outages: Vec<OutageWindow>,
    /// Loss bursts, sorted by onset.
    pub bursts: Vec<LossBurst>,
    /// Handovers, sorted by instant.
    pub handovers: Vec<Handover>,
    /// PoP migrations, sorted by instant.
    pub migrations: Vec<PopMigration>,
    /// Extra first-round loss after a handover or migration.
    pub handoff_loss: f64,
    /// The horizon the schedule covers, seconds.
    pub horizon_secs: f64,
}

impl FaultSchedule {
    /// Sample a schedule for `horizon_secs` from `profile`, drawing all
    /// randomness from `rng` — the same `(seed, profile, horizon)`
    /// always yields the same schedule.
    pub fn generate(rng: &mut Rng, profile: &FaultProfile, horizon_secs: f64) -> FaultSchedule {
        let mut outages = Vec::new();
        if profile.outage_rate_per_min > 0.0 {
            let mean_gap = 60.0 / profile.outage_rate_per_min;
            let mut t = rng.exponential(mean_gap);
            while t < horizon_secs {
                let (lo, hi) = profile.outage_secs;
                let duration_secs = rng.range_f64(lo, hi);
                outages.push(OutageWindow {
                    start_secs: t,
                    duration_secs,
                });
                t += duration_secs + rng.exponential(mean_gap);
            }
        }

        let mut bursts = Vec::new();
        if profile.burst_rate_per_min > 0.0 {
            let mean_gap = 60.0 / profile.burst_rate_per_min;
            let mut t = rng.exponential(mean_gap);
            while t < horizon_secs {
                let (dlo, dhi) = profile.burst_secs;
                let (llo, lhi) = profile.burst_loss;
                let duration_secs = rng.range_f64(dlo, dhi);
                bursts.push(LossBurst {
                    start_secs: t,
                    duration_secs,
                    extra_loss: rng.range_f64(llo, lhi),
                });
                t += duration_secs + rng.exponential(mean_gap);
            }
        }

        let mut handovers = Vec::new();
        if let Some(interval) = profile.handover_interval_secs {
            let mut t = interval * rng.range_f64(0.5, 1.5);
            while t < horizon_secs {
                handovers.push(Handover {
                    at_secs: t,
                    offset_ms: rng.normal_with(0.0, profile.handover_offset_ms),
                });
                t += interval * rng.range_f64(0.7, 1.3);
            }
        }

        let mut migrations = Vec::new();
        for _ in 0..profile.migrations {
            let (lo, hi) = profile.migration_delta_ms;
            let magnitude = rng.range_f64(lo, hi);
            let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
            migrations.push(PopMigration {
                at_secs: rng.range_f64(0.1 * horizon_secs, 0.9 * horizon_secs),
                delta_ms: sign * magnitude,
            });
        }
        migrations.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));

        FaultSchedule {
            outages,
            bursts,
            handovers,
            migrations,
            handoff_loss: profile.handoff_loss,
            horizon_secs,
        }
    }

    /// Whether the link is in a total outage at `t_secs`.
    pub fn is_outage(&self, t_secs: f64) -> bool {
        self.outages.iter().any(|w| w.contains(t_secs))
    }

    /// Extra random loss active at `t_secs` (sum of active bursts).
    pub fn extra_loss(&self, t_secs: f64) -> f64 {
        self.bursts
            .iter()
            .filter(|b| t_secs >= b.start_secs && t_secs < b.start_secs + b.duration_secs)
            .map(|b| b.extra_loss)
            .sum()
    }

    /// RTT offset of the serving satellite at `t_secs` (the offset of
    /// the most recent handover; zero before the first).
    pub fn handover_offset_ms(&self, t_secs: f64) -> f64 {
        self.handovers
            .iter()
            .rev()
            .find(|h| t_secs >= h.at_secs)
            .map_or(0.0, |h| h.offset_ms)
    }

    /// Cumulative persistent RTT shift from migrations at or before
    /// `t_secs`.
    pub fn migration_offset_ms(&self, t_secs: f64) -> f64 {
        self.migrations
            .iter()
            .filter(|m| t_secs >= m.at_secs)
            .map(|m| m.delta_ms)
            .sum()
    }

    /// How many generation bumps (handovers + migrations) have happened
    /// at or before `t_secs`.
    pub fn generation_offset(&self, t_secs: f64) -> u64 {
        let h = self
            .handovers
            .iter()
            .filter(|h| t_secs >= h.at_secs)
            .count();
        let m = self
            .migrations
            .iter()
            .filter(|m| t_secs >= m.at_secs)
            .count();
        (h + m) as u64
    }

    /// Structural sanity: windows non-negative, events inside the
    /// horizon, lists sorted. Returns the problems found (empty = ok);
    /// the sweep asserts this on every generated schedule.
    pub fn structural_problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let sorted = |times: &[f64], what: &str, problems: &mut Vec<String>| {
            if times.windows(2).any(|w| w[0] > w[1]) {
                problems.push(format!("{what} not sorted"));
            }
            if times
                .iter()
                .any(|&t| !(0.0..=self.horizon_secs).contains(&t))
            {
                problems.push(format!("{what} outside horizon"));
            }
        };
        sorted(
            &self
                .outages
                .iter()
                .map(|w| w.start_secs)
                .collect::<Vec<_>>(),
            "outages",
            &mut problems,
        );
        sorted(
            &self.bursts.iter().map(|b| b.start_secs).collect::<Vec<_>>(),
            "bursts",
            &mut problems,
        );
        sorted(
            &self.handovers.iter().map(|h| h.at_secs).collect::<Vec<_>>(),
            "handovers",
            &mut problems,
        );
        sorted(
            &self
                .migrations
                .iter()
                .map(|m| m.at_secs)
                .collect::<Vec<_>>(),
            "migrations",
            &mut problems,
        );
        if self.outages.iter().any(|w| w.duration_secs < 0.0) {
            problems.push("negative outage duration".to_string());
        }
        if self.bursts.iter().any(|b| b.duration_secs < 0.0) {
            problems.push("negative burst duration".to_string());
        }
        if self
            .bursts
            .iter()
            .any(|b| !(0.0..=1.0).contains(&b.extra_loss))
        {
            problems.push("burst loss outside [0, 1]".to_string());
        }
        problems
    }
}

/// A base path with a [`FaultSchedule`] overlaid.
#[derive(Debug, Clone)]
pub struct FaultyPath<P> {
    /// The undisturbed path.
    pub base: P,
    /// The faults applied on top.
    pub schedule: FaultSchedule,
}

impl<P: PathDynamics> PathDynamics for FaultyPath<P> {
    fn base_rtt_ms(&self, t_secs: f64) -> Option<f64> {
        if self.schedule.is_outage(t_secs) {
            return None;
        }
        let base = self.base.base_rtt_ms(t_secs)?;
        let offset =
            self.schedule.handover_offset_ms(t_secs) + self.schedule.migration_offset_ms(t_secs);
        Some((base + offset).max(1.0))
    }

    fn loss_prob(&self, t_secs: f64) -> f64 {
        (self.base.loss_prob(t_secs) + self.schedule.extra_loss(t_secs)).clamp(0.0, 1.0)
    }

    fn bottleneck_mbps(&self) -> f64 {
        self.base.bottleneck_mbps()
    }

    fn buffer_ms(&self) -> f64 {
        self.base.buffer_ms()
    }

    fn generation(&self, t_secs: f64) -> u64 {
        self.base.generation(t_secs) + self.schedule.generation_offset(t_secs)
    }

    fn handoff_loss_prob(&self) -> f64 {
        self.base
            .handoff_loss_prob()
            .max(self.schedule.handoff_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::StaticPath;

    fn schedule() -> FaultSchedule {
        FaultSchedule {
            outages: vec![OutageWindow {
                start_secs: 5.0,
                duration_secs: 2.0,
            }],
            bursts: vec![LossBurst {
                start_secs: 1.0,
                duration_secs: 2.0,
                extra_loss: 0.2,
            }],
            handovers: vec![
                Handover {
                    at_secs: 3.0,
                    offset_ms: 4.0,
                },
                Handover {
                    at_secs: 9.0,
                    offset_ms: -2.0,
                },
            ],
            migrations: vec![PopMigration {
                at_secs: 10.0,
                delta_ms: 25.0,
            }],
            handoff_loss: 0.1,
            horizon_secs: 20.0,
        }
    }

    #[test]
    fn schedule_queries_are_piecewise_correct() {
        let s = schedule();
        assert!(!s.is_outage(4.9));
        assert!(s.is_outage(5.0));
        assert!(s.is_outage(6.9));
        assert!(!s.is_outage(7.0));
        assert_eq!(s.extra_loss(0.5), 0.0);
        assert!((s.extra_loss(2.0) - 0.2).abs() < 1e-12);
        assert_eq!(s.handover_offset_ms(0.0), 0.0);
        assert_eq!(s.handover_offset_ms(3.5), 4.0);
        assert_eq!(s.handover_offset_ms(9.5), -2.0);
        assert_eq!(s.migration_offset_ms(9.9), 0.0);
        assert_eq!(s.migration_offset_ms(10.0), 25.0);
        assert_eq!(s.generation_offset(0.0), 0);
        assert_eq!(s.generation_offset(3.0), 1);
        assert_eq!(s.generation_offset(10.0), 3);
        assert!(s.structural_problems().is_empty());
    }

    #[test]
    fn faulty_path_applies_the_schedule() {
        let p = FaultyPath {
            base: StaticPath::clean(50.0, 100.0),
            schedule: schedule(),
        };
        assert_eq!(p.base_rtt_ms(0.0), Some(50.0));
        assert_eq!(p.base_rtt_ms(3.5), Some(54.0));
        assert_eq!(p.base_rtt_ms(5.5), None);
        assert_eq!(p.base_rtt_ms(12.0), Some(50.0 - 2.0 + 25.0));
        assert!((p.loss_prob(2.0) - 0.2).abs() < 1e-12);
        assert_eq!(p.loss_prob(0.5), 0.0);
        assert_eq!(p.generation(12.0), 3);
        assert_eq!(p.handoff_loss_prob(), 0.1);
    }

    #[test]
    fn generation_never_decreases_and_rtt_stays_positive() {
        let mut rng = Rng::new(1234);
        let sched = FaultSchedule::generate(&mut rng, &FaultProfile::leo(), 120.0);
        assert!(sched.structural_problems().is_empty());
        let p = FaultyPath {
            base: StaticPath::clean(45.0, 150.0),
            schedule: sched,
        };
        let mut last_gen = 0;
        for i in 0..1200 {
            let t = i as f64 * 0.1;
            let g = p.generation(t);
            assert!(g >= last_gen, "generation went backwards at t={t}");
            last_gen = g;
            if let Some(rtt) = p.base_rtt_ms(t) {
                assert!(rtt >= 1.0, "rtt {rtt} below floor at t={t}");
            }
            let loss = p.loss_prob(t);
            assert!((0.0..=1.0).contains(&loss));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = FaultSchedule::generate(&mut Rng::new(77), &FaultProfile::geo_weather(), 60.0);
        let b = FaultSchedule::generate(&mut Rng::new(77), &FaultProfile::geo_weather(), 60.0);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(&mut Rng::new(78), &FaultProfile::geo_weather(), 60.0);
        assert_ne!(a, c);
    }

    #[test]
    fn quiet_profile_is_a_no_op() {
        let sched = FaultSchedule::generate(&mut Rng::new(5), &FaultProfile::quiet(), 600.0);
        assert!(sched.outages.is_empty());
        assert!(sched.bursts.is_empty());
        assert!(sched.handovers.is_empty());
        assert!(sched.migrations.is_empty());
    }
}
