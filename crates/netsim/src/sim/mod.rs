//! Deterministic fault-injection simulation (FoundationDB-style).
//!
//! Everything in this module derives from a single `u64` seed:
//!
//! - [`faults`] — seeded schedules of outages, loss bursts, handovers
//!   and PoP migrations, plus [`FaultyPath`] to overlay them on any
//!   [`PathDynamics`](crate::path::PathDynamics) implementation;
//! - [`invariants`] — the conservation and paper-envelope assertions
//!   ([`Checker`]) evaluated against whatever the scenarios produce;
//! - [`scenario`] — [`run_seed`], one seed's campaign of five
//!   scenarios (GEO±PEP, LEO handover churn, outage recovery,
//!   multi-flow contention, PoP migration + traceroute);
//! - [`sweep`] — [`run_sweep`], the parallel many-seed campaign whose
//!   rendered report is byte-identical at any thread count.
//!
//! A failure is always a one-line reproduction recipe: the sweep prints
//! `repro --sim-sweep --seed <S>`, and replaying that seed re-derives
//! the identical fault schedule, flows, and invariant verdicts.

pub mod faults;
pub mod invariants;
pub mod scenario;
pub mod sweep;

pub use faults::{FaultProfile, FaultSchedule, FaultyPath};
pub use invariants::{Checker, Violation, GEO_RTT_FLOOR_MS};
pub use scenario::{run_seed, SeedReport};
pub use sweep::{run_sweep, SweepConfig, SweepReport};
