//! Seed-sweep campaign runner.
//!
//! A sweep runs [`run_seed`](super::scenario::run_seed) over many seeds
//! in parallel via [`sno_types::par::shard_map`] — one shard per seed,
//! merged in seed order — so the rendered report is byte-identical at
//! any thread count. A failing seed is a complete reproduction recipe:
//! `repro --sim-sweep --seed <S>` replays exactly the scenarios that
//! violated an invariant.

use super::scenario::{run_seed, SeedReport};
use sno_types::par;
use sno_types::Rng;

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The seeds to simulate, in report order.
    pub seeds: Vec<u64>,
    /// Worker threads (`0` = auto).
    pub threads: usize,
    /// Shorter flows for CI latency.
    pub quick: bool,
}

impl SweepConfig {
    /// `count` fresh seeds derived deterministically from `campaign`,
    /// so campaign N is the same seed list on every machine.
    pub fn fresh_seeds(campaign: u64, count: usize) -> Vec<u64> {
        let mut rng = Rng::new(campaign).substream_named("sim-sweep");
        (0..count).map(|_| rng.next_u64()).collect()
    }
}

/// The outcome of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-seed outcomes, in the order seeds were given.
    pub reports: Vec<SeedReport>,
}

impl SweepReport {
    /// Whether every seed passed every invariant.
    pub fn passed(&self) -> bool {
        self.reports.iter().all(SeedReport::passed)
    }

    /// The seeds that violated an invariant, in report order.
    pub fn failing_seeds(&self) -> Vec<u64> {
        self.reports
            .iter()
            .filter(|r| !r.passed())
            .map(|r| r.seed)
            .collect()
    }

    /// Total invariant assertions evaluated across all seeds.
    pub fn total_checks(&self) -> u64 {
        self.reports.iter().map(|r| u64::from(r.checks)).sum()
    }

    /// The full human-readable report. Deterministic: the same seeds
    /// render to the same bytes at any thread count.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.render_line());
            out.push('\n');
            for v in &r.violations {
                out.push_str(&format!("    {v}\n"));
            }
        }
        let failing = self.failing_seeds();
        out.push_str(&format!(
            "sim-sweep: {}/{} seeds passed, {} checks total\n",
            self.reports.len() - failing.len(),
            self.reports.len(),
            self.total_checks()
        ));
        for s in &failing {
            out.push_str(&format!("replay with: repro --sim-sweep --seed {s}\n"));
        }
        out
    }
}

/// Run the campaign: each seed is an independent shard of work.
pub fn run_sweep(cfg: &SweepConfig) -> SweepReport {
    let seeds = cfg.seeds.clone();
    let quick = cfg.quick;
    let reports = par::shard_map(seeds.len(), cfg.threads, |i| run_seed(seeds[i], quick));
    SweepReport { reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_seeds_are_stable_and_distinct() {
        let a = SweepConfig::fresh_seeds(1, 8);
        let b = SweepConfig::fresh_seeds(1, 8);
        assert_eq!(a, b);
        let c = SweepConfig::fresh_seeds(2, 8);
        assert_ne!(a, c);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
    }

    #[test]
    fn sweep_reports_in_seed_order_and_renders() {
        let cfg = SweepConfig {
            seeds: vec![11, 3, 7],
            threads: 2,
            quick: true,
        };
        let report = run_sweep(&cfg);
        let order: Vec<u64> = report.reports.iter().map(|r| r.seed).collect();
        assert_eq!(order, vec![11, 3, 7]);
        assert!(report.passed(), "{}", report.render());
        assert!(report.failing_seeds().is_empty());
        let text = report.render();
        assert!(text.contains("3/3 seeds passed"));
        assert!(text.contains("seed         11  ok"));
    }

    #[test]
    fn failing_seed_reports_a_replay_line() {
        let cfg = SweepConfig {
            seeds: vec![5],
            threads: 1,
            quick: true,
        };
        let mut report = run_sweep(&cfg);
        report.reports[0].violations.push(crate::sim::Violation {
            invariant: "packet-conservation",
            detail: "synthetic".to_string(),
        });
        assert!(!report.passed());
        assert_eq!(report.failing_seeds(), vec![5]);
        assert!(report
            .render()
            .contains("replay with: repro --sim-sweep --seed 5"));
    }
}
