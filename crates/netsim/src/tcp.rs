//! A round-based TCP Reno flow model.
//!
//! This is the engine behind every synthetic NDT speed test and
//! application download. The model advances one congestion round at a
//! time (one round ≈ one RTT, as in classic fluid analyses of Reno):
//!
//! * the congestion window's worth of packets is sent;
//! * queueing at the bottleneck follows a DropTail buffer: the standing
//!   queue adds delay up to `buffer_ms`, and anything beyond the buffer
//!   is dropped (bufferbloat and congestion loss emerge from this, they
//!   are not sampled);
//! * random link loss (and extra handoff loss when the serving-satellite
//!   generation changed) is sampled per packet;
//! * recovery follows Reno: fast retransmit halves the window when a few
//!   packets are lost, full retransmission timeouts (RFC 6298 estimator
//!   with exponential backoff) fire when most of a window or the whole
//!   link vanished — which is what a GEO path without a PEP keeps doing;
//! * each round contributes one `TCP_Info`-style RTT poll, from which
//!   the paper's per-session p5 latency and p95 jitter are computed.
//!
//! With [`PepMode::SplitConnection`], the satellite segment's losses are
//! mostly recovered locally (they never surface as TCP retransmissions)
//! and the window grows at terrestrial cadence thanks to ACK spoofing.

use crate::path::PathDynamics;
use crate::pep::PepMode;
use sno_types::{Mbps, Millis, Rng};

/// Flow configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size, bytes.
    pub mss: u32,
    /// Initial congestion window, packets.
    pub initial_cwnd: f64,
    /// Receive-window cap, packets.
    pub max_cwnd: f64,
    /// Minimum retransmission timeout, ms (Linux default 200 ms).
    pub min_rto_ms: f64,
    /// Maximum RTO after backoff, ms.
    pub max_rto_ms: f64,
    /// Stop after this much simulated transfer time, seconds.
    pub max_duration_secs: f64,
    /// Stop once this many bytes are delivered (`u64::MAX` = unlimited).
    pub byte_limit: u64,
    /// Standard deviation of per-round RTT measurement noise, ms.
    pub rtt_noise_ms: f64,
    /// Proxy configuration.
    pub pep: PepMode,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1_460,
            initial_cwnd: 10.0,
            max_cwnd: 4_096.0,
            min_rto_ms: 200.0,
            max_rto_ms: 60_000.0,
            max_duration_secs: 10.0,
            byte_limit: u64::MAX,
            rtt_noise_ms: 1.0,
            pep: PepMode::None,
        }
    }
}

impl TcpConfig {
    /// An NDT7-style 10-second bulk download.
    pub fn ndt() -> TcpConfig {
        TcpConfig::default()
    }

    /// A bounded object download of `bytes` (web asset, video chunk).
    pub fn download(bytes: u64) -> TcpConfig {
        TcpConfig {
            byte_limit: bytes,
            max_duration_secs: 120.0,
            ..TcpConfig::default()
        }
    }
}

/// Results of one flow.
#[derive(Debug, Clone)]
pub struct TcpStats {
    /// Wall-clock time the flow ran, seconds.
    pub duration_secs: f64,
    /// Bytes delivered to the receiver.
    pub bytes_acked: u64,
    /// Bytes handed to the network (including retransmissions).
    pub bytes_sent: u64,
    /// Bytes retransmitted end-to-end.
    pub bytes_retrans: u64,
    /// One RTT sample per round (the TCP_Info polls).
    pub rtt_samples: Vec<f64>,
    /// Retransmission timeouts that fired.
    pub timeouts: u32,
    /// Whether the byte limit was reached (vs. the time limit).
    pub completed: bool,
    /// Packets handed to the network across all rounds.
    pub pkts_sent: u64,
    /// Packets delivered to the receiver.
    pub pkts_delivered: u64,
    /// Packets lost on the link or dropped at the bottleneck queue.
    /// Conservation holds exactly: `pkts_sent == pkts_delivered +
    /// pkts_lost` (the fault-injection sweeps assert it).
    pub pkts_lost: u64,
    /// Lost packets that surfaced as *end-to-end* retransmissions. With
    /// a split-connection PEP most satellite-segment losses are
    /// recovered locally, so this is at most `pkts_lost` and equals it
    /// only without a proxy.
    pub pkts_retrans_visible: u64,
    /// Largest congestion window the flow ever reached, packets.
    pub max_cwnd_observed: f64,
}

impl TcpStats {
    /// The paper's access-latency estimate: 5th percentile of the RTT
    /// polls. `None` when the flow never completed a round.
    pub fn latency_p5(&self) -> Option<Millis> {
        sno_stats::quantile(&self.rtt_samples, 0.05).map(Millis)
    }

    /// 95th percentile of the RTT excursion above the session minimum —
    /// the `TCP_Info`-style jitter the paper normalises by the p5
    /// latency. `None` with fewer than two polls.
    pub fn jitter_p95(&self) -> Option<Millis> {
        if self.rtt_samples.len() < 2 {
            return None;
        }
        let floor = self
            .rtt_samples
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let excursions: Vec<f64> = self.rtt_samples.iter().map(|&r| r - floor).collect();
        sno_stats::quantile(&excursions, 0.95).map(Millis)
    }

    /// Fraction of sent bytes that were retransmissions.
    pub fn retrans_fraction(&self) -> f64 {
        if self.bytes_sent == 0 {
            0.0
        } else {
            self.bytes_retrans as f64 / self.bytes_sent as f64
        }
    }

    /// Mean goodput over the flow's lifetime.
    pub fn mean_throughput(&self) -> Mbps {
        Mbps::from_bytes(
            self.bytes_acked as f64,
            Millis(self.duration_secs * 1_000.0),
        )
    }
}

/// A runnable TCP flow.
///
/// ```
/// use sno_netsim::{StaticPath, TcpConfig, TcpFlow};
/// use sno_types::Rng;
/// // A clean 20 ms / 100 Mbps path fills the pipe within a 10 s NDT run.
/// let path = StaticPath::clean(20.0, 100.0);
/// let stats = TcpFlow::new(TcpConfig::ndt()).run(&path, 0.0, &mut Rng::new(1));
/// assert!(stats.mean_throughput().0 > 60.0);
/// // The RTT polls sit between the unloaded RTT and RTT + bufferbloat.
/// let p5 = stats.latency_p5().unwrap().0;
/// assert!((18.0..130.0).contains(&p5));
/// ```
pub struct TcpFlow {
    config: TcpConfig,
}

impl TcpFlow {
    /// Create a flow with the given configuration.
    pub fn new(config: TcpConfig) -> TcpFlow {
        TcpFlow { config }
    }

    /// Run the flow over `path`, starting at absolute path time
    /// `start_secs`, drawing randomness from `rng`.
    pub fn run(&self, path: &dyn PathDynamics, start_secs: f64, rng: &mut Rng) -> TcpStats {
        let cfg = &self.config;
        let mss = f64::from(cfg.mss);
        let rate_pkts_per_ms = path.bottleneck_mbps() * 1e6 / 8.0 / mss / 1_000.0;
        debug_assert!(rate_pkts_per_ms > 0.0, "zero bottleneck rate");
        let buffer_pkts = rate_pkts_per_ms * path.buffer_ms();

        let mut cwnd = cfg.initial_cwnd;
        let mut ssthresh = f64::INFINITY;
        let mut srtt: Option<f64> = None;
        let mut rttvar = 0.0;
        let mut rto_ms: f64 = 1_000.0;
        let mut backoff: f64 = 1.0;
        let mut t_ms = 0.0; // elapsed flow time
        let mut last_generation = path.generation(start_secs);

        let mut stats = TcpStats {
            duration_secs: 0.0,
            bytes_acked: 0,
            bytes_sent: 0,
            bytes_retrans: 0,
            rtt_samples: Vec::new(),
            timeouts: 0,
            completed: false,
            pkts_sent: 0,
            pkts_delivered: 0,
            pkts_lost: 0,
            pkts_retrans_visible: 0,
            max_cwnd_observed: 0.0,
        };

        while t_ms < cfg.max_duration_secs * 1_000.0 && stats.bytes_acked < cfg.byte_limit {
            let now_secs = start_secs + t_ms / 1_000.0;
            let Some(base_rtt) = path.base_rtt_ms(now_secs) else {
                // Outage: the retransmission timer expires and backs off.
                stats.timeouts += 1;
                t_ms += (rto_ms * backoff).min(cfg.max_rto_ms);
                backoff = (backoff * 2.0).min(64.0);
                cwnd = 1.0;
                ssthresh = 2.0;
                continue;
            };
            backoff = 1.0;

            // DropTail queue at the bottleneck.
            let bdp_pkts = rate_pkts_per_ms * base_rtt;
            let queue_pkts = (cwnd - bdp_pkts).max(0.0);
            let queue_delay = (queue_pkts / rate_pkts_per_ms).min(path.buffer_ms());
            let overflow = (queue_pkts - buffer_pkts).max(0.0).round() as u64;
            let rtt = (base_rtt + queue_delay + rng.normal_with(0.0, cfg.rtt_noise_ms))
                .max(base_rtt * 0.5);
            stats.rtt_samples.push(rtt);

            // RFC 6298 RTO estimation.
            let smoothed = match srtt {
                None => {
                    rttvar = rtt / 2.0;
                    rtt
                }
                Some(s) => {
                    rttvar = 0.75 * rttvar + 0.25 * (s - rtt).abs();
                    0.875 * s + 0.125 * rtt
                }
            };
            srtt = Some(smoothed);
            rto_ms = (smoothed + 4.0 * rttvar).clamp(cfg.min_rto_ms, cfg.max_rto_ms);

            // Send a window.
            stats.max_cwnd_observed = stats.max_cwnd_observed.max(cwnd);
            let pkts = cwnd.round().max(1.0) as u64;
            stats.bytes_sent += pkts * u64::from(cfg.mss);
            stats.pkts_sent += pkts;

            // Loss: random link loss (PEP-suppressed), handoff burst,
            // queue overflow.
            let generation = path.generation(now_secs);
            let mut p_loss = cfg.pep.effective_loss(path.loss_prob(now_secs));
            if generation != last_generation {
                p_loss += cfg.pep.effective_loss(path.handoff_loss_prob());
                last_generation = generation;
            }
            let random_losses = rng.binomial(pkts, p_loss.min(1.0));
            let overflow_drops = overflow.min(pkts.saturating_sub(random_losses));
            let losses = random_losses + overflow_drops;
            // A split-connection PEP recovers bottleneck drops locally
            // too: only the residual fraction surfaces as end-to-end
            // retransmissions (congestion response still happens — the
            // proxy backs off — but the server-side TCP_Info stays
            // clean).
            let visible_losses = match cfg.pep {
                PepMode::None => losses,
                PepMode::SplitConnection(p) => {
                    random_losses + rng.binomial(overflow_drops, p.residual_loss_factor)
                }
            };

            let delivered = pkts - losses.min(pkts);
            stats.pkts_delivered += delivered;
            stats.pkts_lost += losses.min(pkts);
            stats.pkts_retrans_visible += visible_losses.min(pkts);
            stats.bytes_acked = (stats.bytes_acked + delivered * u64::from(cfg.mss))
                .min(cfg.byte_limit.max(stats.bytes_acked));
            stats.bytes_retrans += visible_losses.min(pkts) * u64::from(cfg.mss);

            if losses == 0 {
                // Window growth; a PEP grows the window several times per
                // satellite round trip thanks to spoofed ACKs — but its
                // buffer applies backpressure, so the extra steps stop
                // once the pipe (BDP + bottleneck buffer) is full.
                let steps = cfg.pep.growth_steps(base_rtt);
                let pipe_cap = bdp_pkts + buffer_pkts;
                for step in 0..steps {
                    if step > 0 && cwnd >= pipe_cap {
                        break;
                    }
                    if cwnd < ssthresh {
                        cwnd = (cwnd * 2.0).min(ssthresh);
                    } else {
                        cwnd += 1.0;
                    }
                }
                cwnd = cwnd.min(cfg.max_cwnd);
                t_ms += rtt;
            } else if losses * 2 >= pkts || pkts < 4 {
                // Lost most of the window (or too few dupacks): RTO.
                stats.timeouts += 1;
                ssthresh = (cwnd / 2.0).max(2.0);
                cwnd = 1.0;
                t_ms += rtt + rto_ms;
            } else {
                // Fast retransmit / fast recovery.
                ssthresh = (cwnd / 2.0).max(2.0);
                cwnd = ssthresh;
                t_ms += rtt;
            }
        }

        stats.duration_secs = t_ms / 1_000.0;
        stats.completed = stats.bytes_acked >= cfg.byte_limit;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{StaticPath, SteppedPath};

    fn run(path: &dyn PathDynamics, cfg: TcpConfig, seed: u64) -> TcpStats {
        TcpFlow::new(cfg).run(path, 0.0, &mut Rng::new(seed))
    }

    #[test]
    fn clean_fast_path_fills_the_pipe() {
        let path = StaticPath::clean(20.0, 100.0);
        let stats = run(&path, TcpConfig::ndt(), 1);
        let tput = stats.mean_throughput().0;
        assert!(tput > 60.0, "throughput {tput}");
        assert!(stats.retrans_fraction() < 0.05);
        assert!((stats.duration_secs - 10.0).abs() < 1.0);
    }

    #[test]
    fn throughput_bounded_by_bottleneck() {
        let path = StaticPath::clean(20.0, 10.0);
        let stats = run(&path, TcpConfig::ndt(), 2);
        assert!(
            stats.mean_throughput().0 <= 10.5,
            "{}",
            stats.mean_throughput()
        );
    }

    #[test]
    fn latency_p5_tracks_base_rtt() {
        let path = StaticPath::clean(600.0, 20.0);
        let stats = run(&path, TcpConfig::ndt(), 3);
        let p5 = stats.latency_p5().unwrap().0;
        assert!((p5 - 600.0).abs() < 30.0, "p5 {p5}");
    }

    #[test]
    fn lossy_long_path_retransmits_heavily() {
        // GEO without PEP: noisy Ka-band link at 600 ms RTT.
        let geo = StaticPath {
            rtt_ms: 600.0,
            loss: 0.03,
            rate_mbps: 20.0,
            buffer_ms: 300.0,
        };
        let geo_stats = run(&geo, TcpConfig::ndt(), 4);
        // LEO: clean short path.
        let leo = StaticPath {
            rtt_ms: 50.0,
            loss: 0.003,
            rate_mbps: 100.0,
            buffer_ms: 60.0,
        };
        let leo_stats = run(&leo, TcpConfig::ndt(), 5);
        assert!(
            geo_stats.retrans_fraction() > 3.0 * leo_stats.retrans_fraction(),
            "geo {} vs leo {}",
            geo_stats.retrans_fraction(),
            leo_stats.retrans_fraction()
        );
        // The long-RTT lossy flow also moves far less data.
        assert!(geo_stats.mean_throughput().0 < leo_stats.mean_throughput().0);
    }

    #[test]
    fn pep_suppresses_retransmissions_and_speeds_ramp() {
        let geo = StaticPath {
            rtt_ms: 600.0,
            loss: 0.015,
            rate_mbps: 20.0,
            buffer_ms: 300.0,
        };
        let plain = run(&geo, TcpConfig::ndt(), 6);
        let pepped = run(
            &geo,
            TcpConfig {
                pep: PepMode::typical(),
                ..TcpConfig::ndt()
            },
            6,
        );
        assert!(
            pepped.retrans_fraction() < plain.retrans_fraction() / 2.0,
            "pep {} vs plain {}",
            pepped.retrans_fraction(),
            plain.retrans_fraction()
        );
        assert!(
            pepped.mean_throughput().0 > plain.mean_throughput().0,
            "pep {} vs plain {}",
            pepped.mean_throughput(),
            plain.mean_throughput()
        );
    }

    #[test]
    fn byte_limited_download_completes() {
        let path = StaticPath::clean(30.0, 50.0);
        let stats = run(&path, TcpConfig::download(1_000_000), 7);
        assert!(stats.completed);
        assert!(stats.bytes_acked >= 1_000_000);
        assert!(stats.duration_secs < 2.0, "took {}s", stats.duration_secs);
    }

    #[test]
    fn small_download_dominated_by_rtt() {
        // A 32 KB object on a 600 ms path: a few round trips, ~1–3 s.
        let path = StaticPath::clean(600.0, 20.0);
        let stats = run(&path, TcpConfig::download(32_000), 8);
        assert!(stats.completed);
        assert!(
            (1.0..4.0).contains(&stats.duration_secs),
            "took {}s",
            stats.duration_secs
        );
    }

    #[test]
    fn outage_causes_timeouts_not_panic() {
        #[derive(Debug)]
        struct Dead;
        impl PathDynamics for Dead {
            fn base_rtt_ms(&self, _t: f64) -> Option<f64> {
                None
            }
            fn loss_prob(&self, _t: f64) -> f64 {
                0.0
            }
            fn bottleneck_mbps(&self) -> f64 {
                10.0
            }
        }
        let stats = run(&Dead, TcpConfig::ndt(), 9);
        assert_eq!(stats.bytes_acked, 0);
        assert!(stats.timeouts > 0);
        assert!(!stats.completed);
    }

    #[test]
    fn handoffs_create_jitter() {
        // RTT stepping every second (aggressive cadence for the test) vs
        // a flat path: stepped must show more jitter. The rate is set so
        // high that the window cap keeps the bottleneck queue empty —
        // isolating the handoff contribution.
        let steps: Vec<(f64, f64)> = (1..60)
            .map(|k| (k as f64, 45.0 + 12.0 * ((k * 7) % 5) as f64 / 4.0))
            .collect();
        let stepped = SteppedPath {
            steps,
            loss: 0.0,
            rate_mbps: 2_000.0,
            handoff_loss: 0.0,
        };
        let flat = StaticPath {
            rtt_ms: 50.0,
            loss: 0.0,
            rate_mbps: 2_000.0,
            buffer_ms: 100.0,
        };
        let cfg = TcpConfig {
            rtt_noise_ms: 0.2,
            ..TcpConfig::ndt()
        };
        let js = run(&stepped, cfg.clone(), 10).jitter_p95().unwrap().0;
        let jf = run(&flat, cfg, 10).jitter_p95().unwrap().0;
        assert!(js > jf + 5.0, "stepped {js} vs flat {jf}");
    }

    #[test]
    fn deep_buffers_bloat_the_rtt() {
        let shallow = StaticPath {
            rtt_ms: 600.0,
            loss: 0.0,
            rate_mbps: 20.0,
            buffer_ms: 50.0,
        };
        let deep = StaticPath {
            rtt_ms: 600.0,
            loss: 0.0,
            rate_mbps: 20.0,
            buffer_ms: 400.0,
        };
        let cfg = TcpConfig::ndt();
        let s = run(&shallow, cfg.clone(), 11);
        let d = run(&deep, cfg, 11);
        let max_s = s.rtt_samples.iter().cloned().fold(0.0, f64::max);
        let max_d = d.rtt_samples.iter().cloned().fold(0.0, f64::max);
        assert!(max_d > max_s + 200.0, "deep {max_d} vs shallow {max_s}");
        // p5 latency stays near base either way — that is why the paper
        // uses p5 as the access-latency estimate.
        assert!((s.latency_p5().unwrap().0 - 600.0).abs() < 40.0);
        assert!((d.latency_p5().unwrap().0 - 600.0).abs() < 40.0);
    }

    #[test]
    fn packet_accounting_is_conserved() {
        let path = StaticPath {
            rtt_ms: 300.0,
            loss: 0.02,
            rate_mbps: 20.0,
            buffer_ms: 100.0,
        };
        for seed in [1, 2, 3] {
            let s = run(&path, TcpConfig::ndt(), seed);
            assert_eq!(s.pkts_sent, s.pkts_delivered + s.pkts_lost);
            // Without a PEP, every loss surfaces as a retransmission.
            assert_eq!(s.pkts_retrans_visible, s.pkts_lost);
            assert_eq!(s.bytes_retrans, s.pkts_retrans_visible * 1_460);
            assert!(s.max_cwnd_observed <= TcpConfig::ndt().max_cwnd);
            let pepped = run(
                &path,
                TcpConfig {
                    pep: PepMode::typical(),
                    ..TcpConfig::ndt()
                },
                seed,
            );
            assert_eq!(pepped.pkts_sent, pepped.pkts_delivered + pepped.pkts_lost);
            assert!(pepped.pkts_retrans_visible <= pepped.pkts_lost);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let path = StaticPath {
            rtt_ms: 80.0,
            loss: 0.01,
            rate_mbps: 30.0,
            buffer_ms: 100.0,
        };
        let a = run(&path, TcpConfig::ndt(), 42);
        let b = run(&path, TcpConfig::ndt(), 42);
        assert_eq!(a.bytes_acked, b.bytes_acked);
        assert_eq!(a.rtt_samples, b.rtt_samples);
    }
}
