//! A deterministic discrete-event queue.
//!
//! Events are ordered by simulated time; ties break by insertion order
//! (FIFO), which keeps runs bit-reproducible regardless of how the heap
//! rebalances. Time is kept in integer microseconds to avoid float
//! comparison hazards in the ordering.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in whole microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from (possibly fractional) milliseconds, rounding to
    /// the nearest microsecond.
    ///
    /// # Panics
    /// Panics in debug builds on negative input.
    pub fn from_millis(ms: f64) -> SimTime {
        debug_assert!(ms >= 0.0, "negative sim time: {ms}");
        SimTime((ms * 1_000.0).round() as u64)
    }

    /// As fractional milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time advanced by `ms` milliseconds.
    pub fn after_millis(self, ms: f64) -> SimTime {
        SimTime(self.0 + SimTime::from_millis(ms).0)
    }
}

#[derive(PartialEq, Eq)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Compared through `Reverse` below, so natural order here.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current simulation time —
    /// scheduling into the past is always a logic error.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
    }

    /// Schedule `event` after a relative delay in milliseconds.
    pub fn schedule_in(&mut self, delay_ms: f64, event: E) {
        let at = self.now.after_millis(delay_ms);
        self.schedule(at, event);
    }

    /// Pop the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Time of the next pending event without popping it. The
    /// fault-injection sweeps use this to assert the queue never holds
    /// an event earlier than the clock.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(entry)| entry.time)
    }

    /// Total events popped so far — conservation fuel for the sweep
    /// invariants (everything scheduled is eventually popped exactly
    /// once: `popped + len == scheduled`).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Total events ever scheduled.
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30.0), "c");
        q.schedule(SimTime::from_millis(10.0), "a");
        q.schedule(SimTime::from_millis(20.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5.0);
        for label in ["first", "second", "third"] {
            q.schedule(t, label);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7.5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(7.5));
        assert_eq!(q.now(), t);
    }

    #[test]
    fn relative_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10.0), 1u8);
        q.pop();
        q.schedule_in(5.0, 2u8);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_millis(15.0));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_rejected() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10.0), ());
        q.pop();
        q.schedule(SimTime::from_millis(5.0), ());
    }

    #[test]
    fn time_conversions() {
        let t = SimTime::from_millis(1.5);
        assert_eq!(t.0, 1_500);
        assert!((t.as_millis() - 1.5).abs() < 1e-9);
        assert!((t.as_secs() - 0.0015).abs() < 1e-12);
        assert_eq!(t.after_millis(0.5), SimTime::from_millis(2.0));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in(1.0, 0);
        q.schedule_in(2.0, 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_and_counters_track_the_heap() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(9.0), 1);
        q.schedule(SimTime::from_millis(4.0), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4.0)));
        assert_eq!(q.scheduled(), 2);
        assert_eq!(q.popped(), 0);
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(9.0)));
        q.pop();
        assert_eq!(q.popped() + q.len() as u64, q.scheduled());
    }
}
