//! Hop-by-hop path probing.
//!
//! Builds RIPE-Atlas-style traceroute records from a declarative hop
//! list. Each hop contributes its cumulative RTT plus measurement noise;
//! hops may silently drop probes (satellite links lose probe packets
//! during handoffs), and the whole measurement may fail to reach the
//! destination.

use sno_types::records::{TraceHop, TracerouteRecord};
use sno_types::{Ipv4, Millis, ProbeId, Rng, Timestamp};

/// One hop of the declared path.
#[derive(Debug, Clone, Copy)]
pub struct HopSpec {
    /// The address that answers at this hop.
    pub addr: Ipv4,
    /// Cumulative round-trip time to this hop (before noise).
    pub rtt: Millis,
}

/// Generates traceroute records over a declared hop path.
#[derive(Debug, Clone)]
pub struct TracerouteEngine {
    /// The hop path, in order, with cumulative RTTs.
    pub hops: Vec<HopSpec>,
    /// Standard deviation of per-hop RTT noise, ms.
    pub noise_ms: f64,
    /// Probability the final destination fails to answer.
    pub unreachable_prob: f64,
}

impl TracerouteEngine {
    /// Build an engine over `hops` with 5% of measurements failing to
    /// reach the target and light measurement noise.
    pub fn new(hops: Vec<HopSpec>) -> TracerouteEngine {
        TracerouteEngine {
            hops,
            noise_ms: 1.5,
            unreachable_prob: 0.05,
        }
    }

    /// Run one measurement at `timestamp` from `probe`.
    ///
    /// # Panics
    /// Panics in debug builds if the hop list is empty.
    pub fn measure(
        &self,
        probe: ProbeId,
        timestamp: Timestamp,
        target: sno_types::records::RootServer,
        rng: &mut Rng,
    ) -> TracerouteRecord {
        debug_assert!(!self.hops.is_empty(), "traceroute over empty path");
        let reached = !rng.chance(self.unreachable_prob);
        let mut hops = Vec::with_capacity(self.hops.len());
        let mut floor = 0.0_f64;
        let last = self.hops.len() - 1;
        for (i, spec) in self.hops.iter().enumerate() {
            if i == last && !reached {
                break;
            }
            // Per-hop RTTs are noisy but cumulative RTT cannot shrink
            // below the path floor already observed.
            let rtt = (spec.rtt.0 + rng.normal_with(0.0, self.noise_ms)).max(floor);
            floor = rtt.min(spec.rtt.0); // later hops may dip below noise peaks but not below spec
            hops.push(TraceHop {
                addr: spec.addr,
                rtt: Millis(rtt),
            });
        }
        TracerouteRecord {
            probe,
            timestamp,
            target,
            hops,
            reached,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_types::records::RootServer;

    fn engine() -> TracerouteEngine {
        TracerouteEngine::new(vec![
            HopSpec {
                addr: Ipv4::new(192, 168, 1, 1),
                rtt: Millis(1.0),
            },
            HopSpec {
                addr: Ipv4::CGNAT_GATEWAY,
                rtt: Millis(35.0),
            },
            HopSpec {
                addr: Ipv4::new(206, 224, 64, 1),
                rtt: Millis(38.0),
            },
            HopSpec {
                addr: Ipv4::new(193, 0, 14, 129),
                rtt: Millis(52.0),
            },
        ])
    }

    #[test]
    fn records_have_all_hops_when_reached() {
        let e = TracerouteEngine {
            unreachable_prob: 0.0,
            ..engine()
        };
        let rec = e.measure(ProbeId(1), Timestamp(0), RootServer::K, &mut Rng::new(1));
        assert!(rec.reached);
        assert_eq!(rec.hops.len(), 4);
        assert_eq!(rec.hop_count(), Some(4));
        let cg = rec.cgnat_rtt().unwrap();
        assert!((cg.0 - 35.0).abs() < 8.0, "cgnat {cg}");
    }

    #[test]
    fn unreached_records_lack_final_hop() {
        let e = TracerouteEngine {
            unreachable_prob: 1.0,
            ..engine()
        };
        let rec = e.measure(ProbeId(1), Timestamp(0), RootServer::K, &mut Rng::new(2));
        assert!(!rec.reached);
        assert_eq!(rec.hops.len(), 3);
        assert_eq!(rec.end_to_end_rtt(), None);
        // The CGNAT hop is still present and measurable.
        assert!(rec.cgnat_rtt().is_some());
    }

    #[test]
    fn noise_varies_across_measurements() {
        let e = TracerouteEngine {
            unreachable_prob: 0.0,
            ..engine()
        };
        let mut rng = Rng::new(3);
        let a = e.measure(ProbeId(1), Timestamp(0), RootServer::A, &mut rng);
        let b = e.measure(ProbeId(1), Timestamp(60), RootServer::A, &mut rng);
        assert_ne!(
            a.hops.last().unwrap().rtt,
            b.hops.last().unwrap().rtt,
            "noise should differ across runs"
        );
    }

    #[test]
    fn rtts_never_negative() {
        let e = TracerouteEngine {
            noise_ms: 10.0, // exaggerated noise
            unreachable_prob: 0.0,
            ..engine()
        };
        let mut rng = Rng::new(4);
        for i in 0..200 {
            let rec = e.measure(ProbeId(1), Timestamp(i), RootServer::B, &mut rng);
            for hop in &rec.hops {
                assert!(hop.rtt.0 >= 0.0, "negative RTT {}", hop.rtt);
            }
        }
    }

    #[test]
    fn failure_rate_matches_probability() {
        let e = TracerouteEngine {
            unreachable_prob: 0.2,
            ..engine()
        };
        let mut rng = Rng::new(5);
        let n = 5_000;
        let failures = (0..n)
            .filter(|&i| {
                !e.measure(ProbeId(1), Timestamp(i), RootServer::C, &mut rng)
                    .reached
            })
            .count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }
}
