//! DNS lookup-time model.
//!
//! Figure 10c compares DNS lookup times across SNOs. The dominant terms
//! are (1) the RTT from the subscriber to the recursive resolver —
//! Starlink hands subscribers Cloudflare at the PoP, while HughesNet and
//! Viasat run their own resolvers behind the satellite link — and (2)
//! whether the resolver already has the name cached, since a miss adds
//! the resolver's upstream recursion on top.

use sno_types::{Millis, Rng};

/// A recursive resolver as seen from one subscriber.
#[derive(Debug, Clone)]
pub struct DnsResolver {
    /// RTT from subscriber to resolver.
    pub rtt_to_resolver: Millis,
    /// Probability a queried name is already cached at the resolver.
    pub cache_hit_prob: f64,
    /// Cost of a full recursive resolution on a miss (resolver to
    /// authoritative servers, possibly several round trips).
    pub upstream_cost: Millis,
    /// Standard deviation of measurement noise, ms.
    pub noise_ms: f64,
}

impl DnsResolver {
    /// Lookup time for one query.
    pub fn lookup(&self, rng: &mut Rng) -> Millis {
        let upstream = if rng.chance(self.cache_hit_prob) {
            Millis::ZERO
        } else {
            self.upstream_cost
        };
        Millis(
            (self.rtt_to_resolver.0 + upstream.0 + rng.normal_with(0.0, self.noise_ms))
                .max(self.rtt_to_resolver.0 * 0.8),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver(rtt: f64, hit: f64) -> DnsResolver {
        DnsResolver {
            rtt_to_resolver: Millis(rtt),
            cache_hit_prob: hit,
            upstream_cost: Millis(150.0),
            noise_ms: 3.0,
        }
    }

    #[test]
    fn cache_hits_cost_one_rtt() {
        let r = resolver(50.0, 1.0);
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            let t = r.lookup(&mut rng).0;
            assert!((40.0..70.0).contains(&t), "lookup {t}");
        }
    }

    #[test]
    fn misses_add_upstream_cost() {
        let r = resolver(50.0, 0.0);
        let mut rng = Rng::new(2);
        let mean: f64 = (0..500).map(|_| r.lookup(&mut rng).0).sum::<f64>() / 500.0;
        assert!((mean - 200.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn satellite_resolver_dominated_by_access_rtt() {
        // HughesNet-style: resolver behind the 650 ms satellite link.
        let hughes = resolver(650.0, 0.5);
        // Starlink-style: Cloudflare at the PoP, 40 ms away.
        let starlink = resolver(40.0, 0.5);
        let mut rng = Rng::new(3);
        let m_h: f64 = (0..300).map(|_| hughes.lookup(&mut rng).0).sum::<f64>() / 300.0;
        let m_s: f64 = (0..300).map(|_| starlink.lookup(&mut rng).0).sum::<f64>() / 300.0;
        assert!(m_h > 4.0 * m_s, "hughes {m_h} vs starlink {m_s}");
    }

    #[test]
    fn lookups_never_faster_than_most_of_the_resolver_rtt() {
        let r = resolver(100.0, 1.0);
        let mut rng = Rng::new(4);
        for _ in 0..1_000 {
            assert!(r.lookup(&mut rng).0 >= 80.0);
        }
    }
}
