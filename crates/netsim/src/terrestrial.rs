//! Terrestrial (fibre) path delay estimates.

use sno_geo::{haversine_km, GeoPoint};
use sno_types::Millis;

/// Speed of light in fibre, km/s (about 2/3 of vacuum).
pub const FIBRE_SPEED_KM_S: f64 = 200_000.0;

/// How much longer real routes are than the great circle (cable
/// geography, IXP detours).
pub const ROUTE_INFLATION: f64 = 1.6;

/// Per-hop processing/queueing overhead added to any terrestrial path.
pub const PATH_OVERHEAD_MS: f64 = 2.0;

/// Round-trip time of a terrestrial path covering `distance_km` of
/// great-circle distance.
pub fn terrestrial_rtt_km(distance_km: f64) -> Millis {
    Millis(2.0 * distance_km * ROUTE_INFLATION / FIBRE_SPEED_KM_S * 1_000.0 + PATH_OVERHEAD_MS)
}

/// Round-trip time of a terrestrial path between two points.
pub fn terrestrial_rtt(a: GeoPoint, b: GeoPoint) -> Millis {
    terrestrial_rtt_km(haversine_km(a, b).0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn co_located_endpoints_cost_only_overhead() {
        let p = GeoPoint::new(40.0, -100.0);
        let rtt = terrestrial_rtt(p, p);
        assert!((rtt.0 - PATH_OVERHEAD_MS).abs() < 1e-9);
    }

    #[test]
    fn transatlantic_rtt_plausible() {
        // New York ↔ London ≈ 5,570 km → ~70–95 ms RTT over fibre.
        let ny = GeoPoint::new(40.71, -74.01);
        let ldn = GeoPoint::new(51.51, -0.13);
        let rtt = terrestrial_rtt(ny, ldn).0;
        assert!((65.0..100.0).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn manila_tokyo_fits_the_papers_observation() {
        // The paper checked WonderNetwork: Manila–Tokyo pings average
        // 177 ms — far above fibre physics (~50 ms), reflecting poor
        // regional routing. Our base model gives the physical floor;
        // the synthetic Atlas generator adds the regional penalty.
        let manila = GeoPoint::new(14.60, 120.98);
        let tokyo = GeoPoint::new(35.68, 139.69);
        let rtt = terrestrial_rtt(manila, tokyo).0;
        assert!((40.0..60.0).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn monotone_in_distance() {
        assert!(terrestrial_rtt_km(1_000.0).0 < terrestrial_rtt_km(2_000.0).0);
    }
}
