//! The path abstraction flows run over.
//!
//! A [`PathDynamics`] describes everything the transport layer can feel
//! about a network path as a function of wall-clock time: base
//! (unloaded) round-trip time, per-packet loss probability, bottleneck
//! rate, buffer depth at the bottleneck, and the serving-satellite
//! generation (whose changes mark handoffs). `sno-synth` implements this
//! trait on top of the orbital model; the built-in [`StaticPath`] and
//! [`SteppedPath`] serve tests and terrestrial baselines.

/// Time-varying path characteristics, as seen by a transport endpoint.
pub trait PathDynamics {
    /// Unloaded RTT at absolute time `t_secs`, or `None` during an
    /// outage (no connectivity at all).
    fn base_rtt_ms(&self, t_secs: f64) -> Option<f64>;

    /// Per-packet random loss probability at `t_secs` (link noise, not
    /// congestion — congestion loss emerges from the queue model).
    fn loss_prob(&self, t_secs: f64) -> f64;

    /// Bottleneck rate in Mbps.
    fn bottleneck_mbps(&self) -> f64;

    /// Bottleneck buffer depth, expressed in milliseconds of queueing at
    /// the bottleneck rate (bufferbloat knob; GEO consumer gear is
    /// notoriously deep).
    fn buffer_ms(&self) -> f64 {
        100.0
    }

    /// Serving-satellite generation at `t_secs`; a change between two
    /// instants means a handoff happened in between. Terrestrial paths
    /// report a constant.
    fn generation(&self, t_secs: f64) -> u64 {
        let _ = t_secs;
        0
    }

    /// Extra per-packet loss probability applied to the first round
    /// after a handoff (beam switch interruption).
    fn handoff_loss_prob(&self) -> f64 {
        0.0
    }
}

/// A fixed path: constant RTT, loss and rate. The terrestrial baseline.
#[derive(Debug, Clone)]
pub struct StaticPath {
    /// Unloaded RTT, ms.
    pub rtt_ms: f64,
    /// Per-packet loss probability.
    pub loss: f64,
    /// Bottleneck rate, Mbps.
    pub rate_mbps: f64,
    /// Bottleneck buffer depth, ms.
    pub buffer_ms: f64,
}

impl StaticPath {
    /// A clean path with the given RTT and rate, no random loss, 100 ms
    /// of buffer.
    pub fn clean(rtt_ms: f64, rate_mbps: f64) -> StaticPath {
        StaticPath {
            rtt_ms,
            loss: 0.0,
            rate_mbps,
            buffer_ms: 100.0,
        }
    }
}

impl PathDynamics for StaticPath {
    fn base_rtt_ms(&self, _t: f64) -> Option<f64> {
        Some(self.rtt_ms)
    }

    fn loss_prob(&self, _t: f64) -> f64 {
        self.loss
    }

    fn bottleneck_mbps(&self) -> f64 {
        self.rate_mbps
    }

    fn buffer_ms(&self) -> f64 {
        self.buffer_ms
    }
}

/// A path whose RTT steps through a fixed schedule of `(until_secs,
/// rtt_ms)` segments — handy for tests that need controlled handoffs.
#[derive(Debug, Clone)]
pub struct SteppedPath {
    /// `(until_secs, rtt_ms)` segments; the path holds each RTT until
    /// its boundary, and the last RTT forever after.
    pub steps: Vec<(f64, f64)>,
    /// Per-packet loss probability.
    pub loss: f64,
    /// Bottleneck rate, Mbps.
    pub rate_mbps: f64,
    /// Extra loss right after each step boundary.
    pub handoff_loss: f64,
}

impl PathDynamics for SteppedPath {
    fn base_rtt_ms(&self, t_secs: f64) -> Option<f64> {
        for &(until, rtt) in &self.steps {
            if t_secs < until {
                return Some(rtt);
            }
        }
        self.steps.last().map(|&(_, rtt)| rtt)
    }

    fn loss_prob(&self, _t: f64) -> f64 {
        self.loss
    }

    fn bottleneck_mbps(&self) -> f64 {
        self.rate_mbps
    }

    fn generation(&self, t_secs: f64) -> u64 {
        self.steps
            .iter()
            .take_while(|&&(until, _)| t_secs >= until)
            .count() as u64
    }

    fn handoff_loss_prob(&self) -> f64 {
        self.handoff_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_path_is_constant() {
        let p = StaticPath::clean(20.0, 100.0);
        assert_eq!(p.base_rtt_ms(0.0), Some(20.0));
        assert_eq!(p.base_rtt_ms(1e6), Some(20.0));
        assert_eq!(p.loss_prob(5.0), 0.0);
        assert_eq!(p.generation(0.0), p.generation(1e6));
    }

    #[test]
    fn stepped_path_steps() {
        let p = SteppedPath {
            steps: vec![(10.0, 50.0), (20.0, 70.0), (f64::INFINITY, 60.0)],
            loss: 0.001,
            rate_mbps: 50.0,
            handoff_loss: 0.2,
        };
        assert_eq!(p.base_rtt_ms(0.0), Some(50.0));
        assert_eq!(p.base_rtt_ms(9.99), Some(50.0));
        assert_eq!(p.base_rtt_ms(10.0), Some(70.0));
        assert_eq!(p.base_rtt_ms(25.0), Some(60.0));
        assert_eq!(p.generation(0.0), 0);
        assert_eq!(p.generation(10.0), 1);
        assert_eq!(p.generation(20.0), 2);
        assert_eq!(p.handoff_loss_prob(), 0.2);
    }
}
