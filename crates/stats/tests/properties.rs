//! Deeper property-based tests for the statistics toolkit.

use sno_check::prelude::*;
use sno_stats::{
    detect_mean_shifts, quantile, quantile_of_sorted, Ecdf, FiveNumber, Histogram, Kde,
    QuantileSketch,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Quantiles are permutation-invariant.
    #[test]
    fn quantile_permutation_invariant(
        data in prop::collection::vec(-1e5..1e5f64, 2..80),
        q in 0.0..=1.0f64,
        seed in any::<u64>(),
    ) {
        let original = quantile(&data, q).unwrap();
        let mut shuffled = data.clone();
        sno_types::Rng::new(seed).shuffle(&mut shuffled);
        let after = quantile(&shuffled, q).unwrap();
        prop_assert_eq!(original, after);
    }

    /// Adding a constant shifts every quantile by that constant.
    #[test]
    fn quantile_translation_equivariant(
        data in prop::collection::vec(-1e4..1e4f64, 1..60),
        q in 0.0..=1.0f64,
        shift in -1e3..1e3f64,
    ) {
        let base = quantile(&data, q).unwrap();
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let after = quantile(&shifted, q).unwrap();
        prop_assert!((after - (base + shift)).abs() < 1e-6);
    }

    /// KDE density is non-negative everywhere and positive at a sample.
    #[test]
    fn kde_density_nonnegative(
        data in prop::collection::vec(0.0..1e3f64, 1..60),
        x in -1e3..2e3f64,
    ) {
        let kde = Kde::fit(&data).unwrap();
        prop_assert!(kde.density(x) >= 0.0);
        prop_assert!(kde.density(data[0]) > 0.0);
        prop_assert!(kde.bandwidth() > 0.0);
    }

    /// The gridded mode lies inside the grid and carries maximal density
    /// among grid points.
    #[test]
    fn kde_mode_is_argmax_on_grid(data in prop::collection::vec(0.0..500.0f64, 2..50)) {
        let kde = Kde::fit(&data).unwrap();
        let mode = kde.mode_on_grid(0.0, 500.0, 101);
        prop_assert!((0.0..=500.0).contains(&mode));
        let mode_density = kde.density(mode);
        for i in 0..101 {
            let x = i as f64 * 5.0;
            prop_assert!(kde.density(x) <= mode_density + 1e-12);
        }
    }

    /// Histogram conservation: in-range + underflow + overflow == n.
    #[test]
    fn histogram_conserves_counts(
        data in prop::collection::vec(-50.0..150.0f64, 0..300),
        bins in 1..40usize,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        h.extend(data.iter().copied());
        prop_assert_eq!(
            h.total_in_range() + h.underflow() + h.overflow(),
            data.len() as u64
        );
        prop_assert_eq!(h.counts().len(), bins);
    }

    /// A constructed two-level series is recovered with the right index
    /// and direction.
    #[test]
    fn changepoint_reconstruction(
        before in 10.0..200.0f64,
        delta in 25.0..300.0f64,
        up in any::<bool>(),
        n1 in 20..80usize,
        n2 in 20..80usize,
        seed in any::<u64>(),
    ) {
        let after = if up { before + delta } else { (before - delta).max(1.0) };
        let mut rng = sno_types::Rng::new(seed);
        let mut series: Vec<f64> =
            (0..n1).map(|_| rng.normal_with(before, 2.0)).collect();
        series.extend((0..n2).map(|_| rng.normal_with(after, 2.0)));
        let shifts = detect_mean_shifts(&series, delta.min((before - after).abs()) / 2.0, 10);
        prop_assert_eq!(shifts.len(), 1, "series {} -> {}", before, after);
        let s = &shifts[0];
        prop_assert!((s.index as i64 - n1 as i64).abs() <= 3);
        prop_assert_eq!(s.after > s.before, after > before);
    }

    /// ECDF steps are a monotone staircase ending at 1.
    #[test]
    fn ecdf_steps_staircase(data in prop::collection::vec(-100.0..100.0f64, 1..120)) {
        let e = Ecdf::new(&data).unwrap();
        let steps = e.steps();
        prop_assert!(!steps.is_empty());
        for w in steps.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 < w[1].1 + 1e-12);
        }
        prop_assert!((steps.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    /// Sketch ingestion is mergeable: any shard partition of the data,
    /// merged in any order and any grouping, reproduces the serially
    /// built state exactly — not approximately.
    #[test]
    fn sketch_merge_shard_order_invariant(
        data in prop::collection::vec(-1e6..1e6f64, 3..200),
        seed in any::<u64>(),
    ) {
        let mut serial = QuantileSketch::new();
        serial.extend(data.iter().copied());

        // Three shards with seed-derived boundaries (possibly empty).
        let a = (seed as usize) % (data.len() + 1);
        let b = ((seed >> 16) as usize) % (data.len() + 1);
        let (lo, hi) = (a.min(b), a.max(b));
        let shards = [&data[..lo], &data[lo..hi], &data[hi..]];
        let sketch_of = |slice: &[f64]| {
            let mut s = QuantileSketch::new();
            s.extend(slice.iter().copied());
            s
        };
        let [s0, s1, s2] = shards.map(sketch_of);

        // Left fold in shard order.
        let mut in_order = s0.clone();
        in_order.merge(&s1);
        in_order.merge(&s2);
        prop_assert_eq!(&in_order, &serial);
        // Reversed shard order.
        let mut reversed = s2.clone();
        reversed.merge(&s1);
        reversed.merge(&s0);
        prop_assert_eq!(&reversed, &serial);
        // Different grouping: s0 + (s1 + s2).
        let mut tail = s1.clone();
        tail.merge(&s2);
        let mut grouped = s0.clone();
        grouped.merge(&tail);
        prop_assert_eq!(&grouped, &serial);
    }

    /// Sketch quantiles stay within the documented relative-error bound
    /// of the exact sorted-data quantile, for any data and any q.
    #[test]
    fn sketch_quantile_error_bounded(
        data in prop::collection::vec(-1e6..1e6f64, 1..300),
        q in 0.0..=1.0f64,
    ) {
        let mut sketch = QuantileSketch::new();
        sketch.extend(data.iter().copied());
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = quantile_of_sorted(&sorted, q);
        let got = sketch.quantile(q).unwrap();
        let max_abs = sorted.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        let tol = QuantileSketch::RELATIVE_ERROR * max_abs + 1e-9;
        prop_assert!(
            (got - exact).abs() <= tol,
            "q {} got {} exact {} tol {}", q, got, exact, tol
        );
    }

    /// FiveNumber scales linearly under positive scaling.
    #[test]
    fn five_number_scale_equivariant(
        data in prop::collection::vec(0.0..1e3f64, 1..80),
        k in 0.1..10.0f64,
    ) {
        let base = FiveNumber::of(&data).unwrap();
        let scaled: Vec<f64> = data.iter().map(|x| x * k).collect();
        let s = FiveNumber::of(&scaled).unwrap();
        prop_assert!((s.median - base.median * k).abs() < 1e-6);
        prop_assert!((s.q1 - base.q1 * k).abs() < 1e-6);
        prop_assert!((s.q3 - base.q3 * k).abs() < 1e-6);
        prop_assert!((s.iqr() - base.iqr() * k).abs() < 1e-6);
    }
}
