//! Percentiles with linear interpolation (Hyndman–Fan type 7, the
//! NumPy/R default).

/// The `q`-quantile (`0.0..=1.0`) of `data`, which need not be sorted.
///
/// Returns `None` on empty input or when `q` is outside `[0, 1]`. NaN
/// values are rejected by a debug assertion (measurement pipelines never
/// produce them).
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = data.to_vec();
    debug_assert!(sorted.iter().all(|x| !x.is_nan()), "NaN in quantile input");
    sorted.sort_by(f64::total_cmp);
    Some(quantile_of_sorted(&sorted, q))
}

/// The `q`-quantile of already-sorted data.
///
/// # Panics
/// Panics if `sorted` is empty or `q` is outside `[0, 1]` (callers are
/// expected to validate; [`quantile`] is the forgiving entry point).
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile fraction out of range: {q}"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// The median of `data` (unsorted). `None` on empty input.
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// Arithmetic mean. `None` on empty input.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

/// Sample standard deviation (n−1 denominator). `None` when fewer than
/// two points.
pub fn std_dev(data: &[f64]) -> Option<f64> {
    if data.len() < 2 {
        return None;
    }
    let m = mean(data)?;
    let var = data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64;
    Some(var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[42.0], 0.0), Some(42.0));
        assert_eq!(quantile(&[42.0], 0.5), Some(42.0));
        assert_eq!(quantile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn empty_and_invalid() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.1), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn interpolation_matches_numpy_type7() {
        let data = [1.0, 2.0, 3.0, 4.0];
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!((quantile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert!((quantile(&data, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&data, 0.75).unwrap() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_ok() {
        let data = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&data), Some(5.0));
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(9.0));
    }

    #[test]
    fn p5_and_p95_on_uniform_grid() {
        let data: Vec<f64> = (0..=100).map(f64::from).collect();
        assert!((quantile(&data, 0.05).unwrap() - 5.0).abs() < 1e-9);
        assert!((quantile(&data, 0.95).unwrap() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0]), None);
        // Sample std of [2,4,4,4,5,5,7,9] is ~2.138.
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.13809).abs() < 1e-4, "{s}");
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = quantile(&data, q).unwrap();
            assert!(v >= prev);
            prev = v;
        }
    }
}
