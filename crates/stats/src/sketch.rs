//! Mergeable streaming sketches for incremental ingest.
//!
//! The batch analyses sort whole sample vectors before summarising them;
//! an online identification service cannot afford to re-sort the world on
//! every update. This module provides mergeable, *deterministic*
//! replacements for the sort-based primitives:
//!
//! * [`QuantileSketch`] — a fixed-depth streaming quantile/ECDF sketch;
//! * [`RunningMoments`] — Welford mean/variance with Chan's parallel
//!   merge;
//! * [`OnlineShiftDetector`] — an incremental front-end to
//!   [`detect_mean_shifts`] that replays the buffered window, so online
//!   changepoints match the batch detector exactly.
//!
//! # Determinism and the merge contract
//!
//! Classic GK/KLL compaction is *order-dependent*: the retained
//! representatives depend on when compactions fire, so two shards merged
//! in different orders end up with different states. We instead keep a
//! *canonical* state that is a pure function of the input multiset: each
//! sample is binned by truncating its IEEE-754 total-order key to the top
//! [`KEPT_MANTISSA_BITS`] mantissa bits, and the sketch stores
//! `bin → count` in a `BTreeMap` plus the exact count/min/max. Bin counts
//! add under merge, and min/max via `total_cmp` are associative and
//! commutative, so *any* shard partition merged in *any* order yields a
//! state byte-identical to serial ingest — the property the online
//! determinism suite pins.
//!
//! The price is a bounded relative error on interior quantiles
//! ([`QuantileSketch::RELATIVE_ERROR`]); min and max are exact. Bins are
//! exponent-aligned, so the depth is fixed: at most `2^KEPT_MANTISSA_BITS`
//! bins per binade actually touched by the data, independent of the
//! stream length.

use crate::changepoint::{detect_mean_shifts, Shift};
use std::collections::BTreeMap;

/// Mantissa bits kept when binning samples. 12 bits give a worst-case
/// relative quantile error of `2^-12` per bin at modest state size.
const KEPT_MANTISSA_BITS: u32 = 12;

/// Low bits of the total-order key dropped by binning.
const BIN_SHIFT: u32 = 52 - KEPT_MANTISSA_BITS;

/// Map an `f64` to a `u64` whose unsigned order matches
/// `f64::total_cmp`: flip all bits of negatives, flip only the sign bit
/// of non-negatives.
fn ordered_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1 << 63)
    }
}

/// Inverse of [`ordered_bits`].
fn from_ordered(o: u64) -> f64 {
    if o >> 63 == 1 {
        f64::from_bits(o ^ (1 << 63))
    } else {
        f64::from_bits(!o)
    }
}

/// The (lowest) representative value of a bin key.
fn bin_value(key: u64) -> f64 {
    from_ordered(key << BIN_SHIFT)
}

/// A mergeable streaming quantile sketch with deterministic,
/// ingest-order-invariant state (see the module docs for the argument).
///
/// `NaN` inputs are rejected (debug assertion); everything else,
/// including infinities and both zeros, keeps the total order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileSketch {
    bins: BTreeMap<u64, u64>,
    count: u64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Worst-case relative error of [`quantile`](QuantileSketch::quantile)
    /// for interior quantiles: one bin width, `2^-(KEPT_MANTISSA_BITS)`
    /// of the sample magnitude, doubled for interpolation slack.
    pub const RELATIVE_ERROR: f64 = 2.0 / (1u64 << KEPT_MANTISSA_BITS) as f64;

    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch::default()
    }

    /// Ingest one sample.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "sketch input must not be NaN");
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            if x.total_cmp(&self.min).is_lt() {
                self.min = x;
            }
            if x.total_cmp(&self.max).is_gt() {
                self.max = x;
            }
        }
        self.count += 1;
        *self.bins.entry(ordered_bits(x) >> BIN_SHIFT).or_insert(0) += 1;
    }

    /// Merge another sketch into this one. Commutative and associative:
    /// any shard partition of a stream, merged in any order, reproduces
    /// the serial-ingest state exactly.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if other.min.total_cmp(&self.min).is_lt() {
            self.min = other.min;
        }
        if other.max.total_cmp(&self.max).is_gt() {
            self.max = other.max;
        }
        self.count += other.count;
        for (&key, &c) in &other.bins {
            *self.bins.entry(key).or_insert(0) += c;
        }
    }

    /// Number of samples ingested.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been ingested.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum of the ingested samples.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum of the ingested samples.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The sample value at `rank` (0-based) up to bin resolution; exact
    /// at the extreme ranks.
    fn value_at_rank(&self, rank: u64) -> f64 {
        if rank == 0 {
            return self.min;
        }
        if rank + 1 >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (&key, &c) in &self.bins {
            seen += c;
            if rank < seen {
                return bin_value(key);
            }
        }
        self.max
    }

    /// Approximate `q`-quantile with the same Hyndman–Fan type-7
    /// interpolation as [`quantile_of_sorted`]; `None` on an empty sketch
    /// or `q` outside `[0, 1]`. Within
    /// [`RELATIVE_ERROR`](QuantileSketch::RELATIVE_ERROR) of the exact
    /// quantile; exact at `q = 0` and `q = 1`.
    ///
    /// [`quantile_of_sorted`]: crate::quantile::quantile_of_sorted
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let pos = q * (self.count - 1) as f64;
        let lo = pos.floor() as u64;
        let hi = pos.ceil() as u64;
        let frac = pos - pos.floor();
        let a = self.value_at_rank(lo);
        let b = self.value_at_rank(hi);
        Some(a + (b - a) * frac)
    }

    /// Ascending `(representative value, count)` pairs — the weighted
    /// sample the sketch retains, e.g. for expansion into an
    /// [`Ecdf`](crate::Ecdf).
    pub fn weighted_values(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bins.iter().map(|(&k, &c)| (bin_value(k), c))
    }

    /// Fraction of ingested samples in `[lo, hi)` — the sketch-backed
    /// analogue of `Kde::mass_in`, which is likewise the *empirical*
    /// band mass of the sample. Counts whole bins whose key range
    /// starts inside `[lo, hi)`, so samples within one bin width
    /// (relative [`RELATIVE_ERROR`](QuantileSketch::RELATIVE_ERROR)) of
    /// either boundary may land on the wrong side; everything else is
    /// exact. Returns `0.0` on an empty sketch or an empty interval.
    pub fn mass_in(&self, lo: f64, hi: f64) -> f64 {
        // `partial_cmp` so a NaN bound (incomparable) also yields 0.0.
        if self.count == 0 || lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
            return 0.0;
        }
        let lo_key = ordered_bits(lo) >> BIN_SHIFT;
        let hi_key = ordered_bits(hi) >> BIN_SHIFT;
        let in_band: u64 = self.bins.range(lo_key..hi_key).map(|(_, &c)| c).sum();
        in_band as f64 / self.count as f64
    }
}

impl Extend<f64> for QuantileSketch {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.push(x);
        }
    }
}

/// Mergeable running mean/variance: Welford's update for single samples,
/// Chan's pairwise formula for merges.
///
/// Unlike [`QuantileSketch`], the state is floating-point accumulation,
/// so merge order changes results only at rounding level (~1e-12
/// relative) — near-equal, not byte-identical, across shardings.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// An empty accumulator.
    pub fn new() -> RunningMoments {
        RunningMoments::default()
    }

    /// Ingest one sample (Welford's update).
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "moments input must not be NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator into this one (Chan et al.'s parallel
    /// combination of partial means and M2s).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let (n1, n2) = (self.count as f64, other.count as f64);
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
    }

    /// Number of samples ingested.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been ingested.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the ingested samples.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (`None` below two samples).
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

impl Extend<f64> for RunningMoments {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.push(x);
        }
    }
}

/// Incremental front-end to [`detect_mean_shifts`]: buffers the series as
/// it arrives and replays the batch detector over the buffered window on
/// demand, so online results match batch results on the same window *by
/// construction* rather than by a separate (and separately buggy)
/// online algorithm.
///
/// [`evict_to`](OnlineShiftDetector::evict_to) bounds memory by dropping
/// the oldest samples; reported shift indices stay global (indices into
/// the full pushed series) via an eviction offset.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineShiftDetector {
    min_shift: f64,
    min_segment: usize,
    window: Vec<f64>,
    evicted: usize,
}

impl OnlineShiftDetector {
    /// A detector with the same thresholds as
    /// [`detect_mean_shifts`]`(_, min_shift, min_segment)`.
    pub fn new(min_shift: f64, min_segment: usize) -> OnlineShiftDetector {
        assert!(min_segment >= 1, "min_segment must be at least 1");
        OnlineShiftDetector {
            min_shift,
            min_segment,
            window: Vec::new(),
            evicted: 0,
        }
    }

    /// Append one sample to the window.
    pub fn push(&mut self, x: f64) {
        self.window.push(x);
    }

    /// Total samples pushed, including evicted ones.
    pub fn len(&self) -> usize {
        self.evicted + self.window.len()
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples currently buffered (the replay window).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Drop all but the most recent `keep` buffered samples, advancing
    /// the global index offset so later shifts keep series-global
    /// indices.
    pub fn evict_to(&mut self, keep: usize) {
        if self.window.len() > keep {
            let drop = self.window.len() - keep;
            self.window.drain(..drop);
            self.evicted += drop;
        }
    }

    /// Append another detector's window (its samples are taken to follow
    /// this one's in arrival order). The other detector must not have
    /// evicted samples.
    pub fn merge(&mut self, other: &OnlineShiftDetector) {
        debug_assert_eq!(other.evicted, 0, "cannot merge an evicted window");
        self.window.extend_from_slice(&other.window);
    }

    /// Run [`detect_mean_shifts`] over the buffered window; indices are
    /// global (offset by the evicted prefix). With no eviction this is
    /// *exactly* the batch result on the full pushed series.
    pub fn shifts(&self) -> Vec<Shift> {
        detect_mean_shifts(&self.window, self.min_shift, self.min_segment)
            .into_iter()
            .map(|s| Shift {
                index: s.index + self.evicted,
                ..s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::quantile_of_sorted;
    use sno_types::Rng;

    fn sample(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.normal_with(40.0, 12.0)).collect()
    }

    #[test]
    fn mass_in_tracks_empirical_band_mass() {
        let xs = sample(0x5A7E, 4_000);
        let mut sketch = QuantileSketch::new();
        sketch.extend(xs.iter().copied());
        for (lo, hi) in [(0.0, 35.0), (35.0, 300.0), (0.0, 100.0), (40.0, 60.0)] {
            let exact =
                xs.iter().filter(|&&x| (lo..hi).contains(&x)).count() as f64 / xs.len() as f64;
            let approx = sketch.mass_in(lo, hi);
            // Only samples within one bin of a boundary can stray.
            assert!(
                (approx - exact).abs() < 0.01,
                "[{lo}, {hi}): sketch {approx} vs exact {exact}"
            );
        }
        // Whole-range mass is exactly 1; empty and inverted bands are 0.
        assert_eq!(sketch.mass_in(f64::NEG_INFINITY, f64::INFINITY), 1.0);
        assert_eq!(sketch.mass_in(500.0, 400.0), 0.0);
        assert_eq!(QuantileSketch::new().mass_in(0.0, 100.0), 0.0);
        // Disjoint bands partition the total mass exactly (bin counts
        // are integers, so the halves always sum to 1).
        let split = 40.0;
        let a = sketch.mass_in(f64::NEG_INFINITY, split);
        let b = sketch.mass_in(split, f64::INFINITY);
        assert!((a + b - 1.0).abs() < 1e-12, "{a} + {b}");
    }

    #[test]
    fn mass_in_merges_like_sample_union() {
        let xs = sample(7, 1_000);
        let mut whole = QuantileSketch::new();
        whole.extend(xs.iter().copied());
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        left.extend(xs[..400].iter().copied());
        right.extend(xs[400..].iter().copied());
        left.merge(&right);
        for (lo, hi) in [(0.0, 35.0), (20.0, 60.0), (60.0, 1_000.0)] {
            assert_eq!(left.mass_in(lo, hi), whole.mass_in(lo, hi), "[{lo},{hi})");
        }
    }

    #[test]
    fn ordered_bits_roundtrip_and_order() {
        let xs = [
            f64::NEG_INFINITY,
            -1.0e300,
            -2.5,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            2.5,
            1.0e300,
            f64::INFINITY,
        ];
        for w in xs.windows(2) {
            assert!(ordered_bits(w[0]) < ordered_bits(w[1]), "{w:?}");
        }
        for &x in &xs {
            assert_eq!(from_ordered(ordered_bits(x)).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn empty_sketch() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn min_max_exact() {
        let mut s = QuantileSketch::new();
        s.extend(sample(3, 500));
        let data = sample(3, 500);
        let exact_min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let exact_max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), Some(exact_min));
        assert_eq!(s.max(), Some(exact_max));
        assert_eq!(s.count(), 500);
    }

    #[test]
    fn quantiles_within_bound() {
        let mut data = sample(11, 4096);
        let mut s = QuantileSketch::new();
        s.extend(data.iter().copied());
        data.sort_by(f64::total_cmp);
        let max_abs = data.iter().fold(0.0f64, |acc, x| acc.max(x.abs()));
        for q in [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0] {
            let exact = quantile_of_sorted(&data, q);
            let approx = s.quantile(q).unwrap();
            let bound = QuantileSketch::RELATIVE_ERROR * max_abs + 1e-12;
            assert!(
                (approx - exact).abs() <= bound,
                "q={q}: approx {approx} exact {exact} bound {bound}"
            );
        }
    }

    #[test]
    fn merge_matches_serial_exactly() {
        let data = sample(42, 1000);
        let mut serial = QuantileSketch::new();
        serial.extend(data.iter().copied());
        // Three uneven shards, merged out of order.
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut c = QuantileSketch::new();
        a.extend(data[..100].iter().copied());
        b.extend(data[100..700].iter().copied());
        c.extend(data[700..].iter().copied());
        let mut merged = QuantileSketch::new();
        merged.merge(&c);
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, serial);
    }

    #[test]
    fn moments_match_two_pass() {
        let data = sample(9, 333);
        let mut m = RunningMoments::new();
        m.extend(data.iter().copied());
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((m.mean().unwrap() - mean).abs() < 1e-9);
        assert!((m.variance().unwrap() - var).abs() < 1e-9);
        assert_eq!(m.count(), 333);
    }

    #[test]
    fn moments_merge_near_serial() {
        let data = sample(10, 400);
        let mut serial = RunningMoments::new();
        serial.extend(data.iter().copied());
        let mut left = RunningMoments::new();
        let mut right = RunningMoments::new();
        left.extend(data[..123].iter().copied());
        right.extend(data[123..].iter().copied());
        left.merge(&right);
        assert_eq!(left.count(), serial.count());
        assert!((left.mean().unwrap() - serial.mean().unwrap()).abs() < 1e-9);
        assert!((left.variance().unwrap() - serial.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn online_shifts_match_batch() {
        let mut series = vec![53.0; 100];
        series.extend(vec![33.0; 80]);
        let mut det = OnlineShiftDetector::new(10.0, 10);
        for &x in &series {
            det.push(x);
        }
        assert_eq!(det.shifts(), detect_mean_shifts(&series, 10.0, 10));
    }

    #[test]
    fn eviction_keeps_global_indices() {
        let mut series = vec![50.0; 60];
        series.extend(vec![90.0; 60]);
        let mut det = OnlineShiftDetector::new(10.0, 10);
        for &x in &series[..40] {
            det.push(x);
        }
        det.evict_to(20); // drop the first 20 samples
        for &x in &series[40..] {
            det.push(x);
        }
        let shifts = det.shifts();
        assert_eq!(shifts.len(), 1);
        assert_eq!(shifts[0].index, 60, "index stays series-global");
        assert_eq!(det.len(), 120);
        assert_eq!(det.window_len(), 100);
    }
}
