//! Five-number summaries (boxplot statistics).

use crate::quantile::quantile_of_sorted;
use crate::sketch::QuantileSketch;

/// The statistics a boxplot displays: min / q1 / median / q3 / max, plus
/// the count and the Tukey whisker positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    pub count: usize,
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
}

impl FiveNumber {
    /// Summarise `data` (unsorted). `None` on empty input.
    pub fn of(data: &[f64]) -> Option<FiveNumber> {
        if data.is_empty() {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        FiveNumber::from_sorted(&sorted)
    }

    /// Summarise already-sorted `data` without re-sorting — for callers
    /// that sort once and derive several statistics from the same
    /// samples. `None` on empty input.
    pub fn from_sorted(sorted: &[f64]) -> Option<FiveNumber> {
        if sorted.is_empty() {
            return None;
        }
        debug_assert!(
            sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            "input must be sorted"
        );
        Some(FiveNumber {
            count: sorted.len(),
            min: sorted[0],
            q1: quantile_of_sorted(sorted, 0.25),
            median: quantile_of_sorted(sorted, 0.5),
            q3: quantile_of_sorted(sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Summarise a streaming [`QuantileSketch`]: count, min and max are
    /// exact; the quartiles carry the sketch's bounded relative error.
    /// `None` on an empty sketch.
    pub fn from_sketch(sketch: &QuantileSketch) -> Option<FiveNumber> {
        Some(FiveNumber {
            count: sketch.count() as usize,
            min: sketch.min()?,
            q1: sketch.quantile(0.25)?,
            median: sketch.quantile(0.5)?,
            q3: sketch.quantile(0.75)?,
            max: sketch.max()?,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Tukey whiskers: the data range clipped to `1.5 × IQR` beyond the
    /// quartiles.
    pub fn whiskers(&self) -> (f64, f64) {
        let lo = (self.q1 - 1.5 * self.iqr()).max(self.min);
        let hi = (self.q3 + 1.5 * self.iqr()).min(self.max);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_empty_is_none() {
        assert!(FiveNumber::of(&[]).is_none());
    }

    #[test]
    fn known_summary() {
        let data = [7.0, 1.0, 3.0, 5.0, 9.0];
        let s = FiveNumber::of(&data).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.q1, 3.0);
        assert_eq!(s.q3, 7.0);
        assert_eq!(s.iqr(), 4.0);
    }

    #[test]
    fn ordering_invariant() {
        let data = [4.2, 1.1, 8.8, 3.3, 2.2, 9.9, 5.5];
        let s = FiveNumber::of(&data).unwrap();
        assert!(s.min <= s.q1 && s.q1 <= s.median);
        assert!(s.median <= s.q3 && s.q3 <= s.max);
        let (lo, hi) = s.whiskers();
        assert!(lo >= s.min && hi <= s.max);
        assert!(lo <= s.q1 && hi >= s.q3);
    }

    #[test]
    fn whiskers_clip_to_data() {
        // Tight cluster plus an outlier: upper whisker must not pass max.
        let data = [10.0, 10.1, 10.2, 10.3, 50.0];
        let s = FiveNumber::of(&data).unwrap();
        let (lo, hi) = s.whiskers();
        assert!(lo >= 10.0);
        assert!(hi < 50.0, "outlier should sit beyond the whisker: {hi}");
    }
}
