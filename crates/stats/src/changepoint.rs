//! Mean-shift changepoint detection.
//!
//! Figure 8b identifies probes whose RTT-to-PoP series shifted level when
//! Starlink reassigned their PoP (New Zealand −20 ms in July 2022,
//! Netherlands −10 ms, Nevada +2× and a later revert). We detect these
//! shifts with binary segmentation on the cumulative-sum statistic: find
//! the split that maximally reduces the within-segment sum of squared
//! deviations, accept it if the means differ by more than a caller-chosen
//! threshold, and recurse into both halves.

/// A detected level shift between two adjacent segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shift {
    /// Index of the first sample *after* the change.
    pub index: usize,
    /// Mean of the segment before the change.
    pub before: f64,
    /// Mean of the segment after the change.
    pub after: f64,
}

impl Shift {
    /// Absolute size of the shift.
    pub fn magnitude(&self) -> f64 {
        (self.after - self.before).abs()
    }
}

/// Detect mean shifts in `series` by binary segmentation.
///
/// A split is accepted when it reduces the within-segment sum of squared
/// deviations by at least `min_shift² · min_segment / 2` (so a level
/// change of `min_shift` sustained for `min_segment` samples is always
/// found, including symmetric change-and-revert bumps whose edges have
/// small *global* mean differences) and each side keeps at least
/// `min_segment` samples. Detected shifts whose local magnitude falls
/// below `min_shift` are dropped. Returned shifts are sorted by index;
/// `before`/`after` are the means of the *local* segments delimited by
/// neighbouring changepoints.
pub fn detect_mean_shifts(series: &[f64], min_shift: f64, min_segment: usize) -> Vec<Shift> {
    assert!(min_segment >= 1, "min_segment must be at least 1");
    let min_gain = 0.5 * min_shift * min_shift * min_segment as f64;
    let mut cuts: Vec<usize> = Vec::new();
    segment(series, 0, min_gain, min_segment, &mut cuts);
    cuts.sort_unstable();

    // Convert cut indices into Shift records with local segment means.
    let mut boundaries = vec![0];
    boundaries.extend(cuts.iter().copied());
    boundaries.push(series.len());
    let mut shifts = Vec::new();
    for k in 1..boundaries.len() - 1 {
        let (a, b, c) = (boundaries[k - 1], boundaries[k], boundaries[k + 1]);
        let shift = Shift {
            index: b,
            before: mean(&series[a..b]),
            after: mean(&series[b..c]),
        };
        if shift.magnitude() >= min_shift {
            shifts.push(shift);
        }
    }
    shifts
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Recursively find the best split of `series[..]` (whose first element
/// has global index `offset`) and push accepted cut points into `cuts`.
fn segment(
    series: &[f64],
    offset: usize,
    min_gain: f64,
    min_segment: usize,
    cuts: &mut Vec<usize>,
) {
    let n = series.len();
    if n < 2 * min_segment {
        return;
    }
    // Prefix sums for O(1) segment means.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &x in series {
        acc += x;
        prefix.push(acc);
    }
    let total = prefix[n];
    // Maximise between-segment variance reduction: equivalent to
    // maximising n_l * n_r / n * (mean_l - mean_r)^2.
    let mut best: Option<(usize, f64, f64, f64)> = None;
    #[allow(clippy::needless_range_loop)] // k is a split position, not an element index
    for k in min_segment..=n - min_segment {
        let (nl, nr) = (k as f64, (n - k) as f64);
        let mean_l = prefix[k] / nl;
        let mean_r = (total - prefix[k]) / nr;
        let gain = nl * nr / n as f64 * (mean_l - mean_r) * (mean_l - mean_r);
        if best.is_none_or(|(_, g, _, _)| gain > g) {
            best = Some((k, gain, mean_l, mean_r));
        }
    }
    let Some((k, gain, _, _)) = best else { return };
    if gain < min_gain {
        return;
    }
    cuts.push(offset + k);
    segment(&series[..k], offset, min_gain, min_segment, cuts);
    segment(&series[k..], offset + k, min_gain, min_segment, cuts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_types::Rng;

    #[test]
    fn flat_series_has_no_shifts() {
        let series = vec![50.0; 100];
        assert!(detect_mean_shifts(&series, 5.0, 5).is_empty());
    }

    #[test]
    fn too_short_series() {
        assert!(detect_mean_shifts(&[], 5.0, 5).is_empty());
        assert!(detect_mean_shifts(&[1.0, 100.0], 5.0, 5).is_empty());
    }

    #[test]
    fn single_step_down_detected() {
        // NZ-style: 53 ms for 100 days, then 33 ms.
        let mut series = vec![53.0; 100];
        series.extend(vec![33.0; 80]);
        let shifts = detect_mean_shifts(&series, 10.0, 10);
        assert_eq!(shifts.len(), 1);
        assert_eq!(shifts[0].index, 100);
        assert!((shifts[0].before - 53.0).abs() < 0.5);
        assert!((shifts[0].after - 33.0).abs() < 0.5);
        assert!((shifts[0].magnitude() - 20.0).abs() < 1.0);
    }

    #[test]
    fn step_up_and_revert_detected() {
        // Nevada-style: 50 ms, doubles to 100 ms, reverts to 50 ms.
        let mut series = vec![50.0; 120];
        series.extend(vec![100.0; 30]);
        series.extend(vec![50.0; 120]);
        let shifts = detect_mean_shifts(&series, 20.0, 10);
        assert_eq!(shifts.len(), 2);
        assert_eq!(shifts[0].index, 120);
        assert_eq!(shifts[1].index, 150);
        assert!(shifts[0].after > shifts[0].before);
        assert!(shifts[1].after < shifts[1].before);
    }

    #[test]
    fn noise_below_threshold_ignored() {
        let mut rng = Rng::new(99);
        let series: Vec<f64> = (0..300).map(|_| rng.normal_with(45.0, 3.0)).collect();
        let shifts = detect_mean_shifts(&series, 10.0, 10);
        assert!(shifts.is_empty(), "spurious shifts: {shifts:?}");
    }

    #[test]
    fn shift_detected_under_noise() {
        let mut rng = Rng::new(7);
        let mut series: Vec<f64> = (0..150).map(|_| rng.normal_with(53.0, 2.5)).collect();
        series.extend((0..150).map(|_| rng.normal_with(33.0, 2.5)));
        let shifts = detect_mean_shifts(&series, 10.0, 10);
        assert_eq!(shifts.len(), 1);
        assert!(
            (shifts[0].index as i64 - 150).abs() <= 2,
            "index {}",
            shifts[0].index
        );
    }

    #[test]
    fn min_segment_respected() {
        // A 3-sample spike cannot become its own segment at min_segment=10.
        let mut series = vec![50.0; 50];
        series.extend(vec![500.0; 3]);
        series.extend(vec![50.0; 50]);
        for s in detect_mean_shifts(&series, 10.0, 10) {
            assert!(s.index >= 10 && s.index <= series.len() - 10);
        }
    }
}
