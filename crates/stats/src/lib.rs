//! Statistical toolkit for the measurement analyses.
//!
//! Everything the paper's analysis needs, implemented from scratch:
//!
//! * [`mod@quantile`] — percentiles with linear interpolation (the paper's
//!   p5 access latency, p95 jitter, medians);
//! * [`summary`] — five-number summaries / boxplot statistics;
//! * [`kde`] — Gaussian kernel density estimation with Silverman's
//!   bandwidth rule (Figure 2's per-ASN latency profiles);
//! * [`ecdf`] — empirical CDFs (Figures 4b, 4c, 10c);
//! * [`histogram`] — fixed-width binning;
//! * [`timeseries`] — daily binning and daily-variation statistics
//!   (Figure 4a);
//! * [`changepoint`] — mean-shift segmentation used to detect Starlink
//!   PoP reassignment events in RTT series (Figure 8b);
//! * [`sketch`] — mergeable streaming sketches (quantiles, moments,
//!   changepoints) for the online identification service.

pub mod changepoint;
pub mod ecdf;
pub mod histogram;
pub mod kde;
pub mod quantile;
pub mod sketch;
pub mod summary;
pub mod timeseries;

pub use changepoint::{detect_mean_shifts, Shift};
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use kde::Kde;
pub use quantile::{median, quantile, quantile_of_sorted};
pub use sketch::{OnlineShiftDetector, QuantileSketch, RunningMoments};
pub use summary::FiveNumber;
pub use timeseries::{daily_medians, DailyPoint};
