//! Daily time-series aggregation.
//!
//! Figure 4a plots, per operator, the *median access latency per day*
//! over a year, and quotes each operator's "daily latency variation
//! (95th %ile)" — the spread of relative day-over-day change. These
//! helpers compute both from raw timestamped samples.

use crate::quantile::{median, quantile};
use sno_types::{Timestamp, UtcDay};

/// One day's aggregate of a measurement series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DailyPoint {
    /// The day the samples fall on.
    pub day: UtcDay,
    /// Number of samples that day.
    pub count: usize,
    /// Median of the day's samples.
    pub median: f64,
}

/// Group `(timestamp, value)` samples by UTC day and take each day's
/// median. Days with no samples are skipped; output is sorted by day.
pub fn daily_medians(samples: &[(Timestamp, f64)]) -> Vec<DailyPoint> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<(UtcDay, f64)> = samples.iter().map(|&(t, v)| (t.day(), v)).collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let day = sorted[i].0;
        let mut j = i;
        while j < sorted.len() && sorted[j].0 == day {
            j += 1;
        }
        let values: Vec<f64> = sorted[i..j].iter().map(|&(_, v)| v).collect();
        out.push(DailyPoint {
            day,
            count: values.len(),
            // sno-lint: allow(unwrap-in-lib): i < j, so the day has at least one value
            median: median(&values).expect("non-empty day"),
        });
        i = j;
    }
    out
}

/// The paper's "daily latency variation (95th %ile)": the 95th percentile
/// of `|m_d − m_{d−1}| / m_{d−1}` over consecutive daily medians,
/// expressed as a fraction (0.031 = 3.1 %).
///
/// Returns `None` when fewer than two consecutive days exist.
pub fn daily_variation_p95(points: &[DailyPoint]) -> Option<f64> {
    let mut rel_changes = Vec::new();
    for w in points.windows(2) {
        if w[1].day - w[0].day == 1 && w[0].median > 0.0 {
            rel_changes.push((w[1].median - w[0].median).abs() / w[0].median);
        }
    }
    quantile(&rel_changes, 0.95)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_types::Date;

    fn at(day: u32, sec: u64) -> Timestamp {
        Timestamp::from_day(UtcDay(day)) + sec
    }

    #[test]
    fn empty_series() {
        assert!(daily_medians(&[]).is_empty());
        assert!(daily_variation_p95(&[]).is_none());
    }

    #[test]
    fn groups_by_day_and_takes_median() {
        let samples = vec![
            (at(0, 10), 50.0),
            (at(0, 20), 60.0),
            (at(0, 30), 70.0),
            (at(2, 0), 100.0),
        ];
        let daily = daily_medians(&samples);
        assert_eq!(daily.len(), 2);
        assert_eq!(
            daily[0],
            DailyPoint {
                day: UtcDay(0),
                count: 3,
                median: 60.0
            }
        );
        assert_eq!(
            daily[1],
            DailyPoint {
                day: UtcDay(2),
                count: 1,
                median: 100.0
            }
        );
    }

    #[test]
    fn unsorted_input_handled() {
        let samples = vec![(at(5, 0), 2.0), (at(1, 0), 1.0), (at(5, 10), 4.0)];
        let daily = daily_medians(&samples);
        assert_eq!(daily[0].day, UtcDay(1));
        assert_eq!(daily[1].median, 3.0);
    }

    #[test]
    fn variation_skips_gaps() {
        // Days 0,1 consecutive (10% change); days 1,3 have a gap.
        let points = vec![
            DailyPoint {
                day: UtcDay(0),
                count: 1,
                median: 100.0,
            },
            DailyPoint {
                day: UtcDay(1),
                count: 1,
                median: 110.0,
            },
            DailyPoint {
                day: UtcDay(3),
                count: 1,
                median: 500.0,
            },
        ];
        let v = daily_variation_p95(&points).unwrap();
        assert!((v - 0.1).abs() < 1e-12, "{v}");
    }

    #[test]
    fn stable_series_has_low_variation() {
        let points: Vec<DailyPoint> = (0..365)
            .map(|d| DailyPoint {
                day: UtcDay(d),
                count: 10,
                median: 56.0 + (d % 2) as f64 * 0.5,
            })
            .collect();
        let v = daily_variation_p95(&points).unwrap();
        assert!(v < 0.01, "{v}");
    }

    #[test]
    fn days_render_as_dates() {
        let daily = daily_medians(&[(Timestamp::from_date(Date::new(2022, 7, 12), 0), 1.0)]);
        assert_eq!(daily[0].day.to_string(), "2022-07-12");
    }
}
