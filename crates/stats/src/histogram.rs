//! Fixed-width histograms.

/// A histogram over `[lo, hi)` with equally wide bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo` / at or above `hi`.
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create an empty histogram.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(lo < hi, "empty histogram range");
        assert!(bins > 0, "zero bins");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let bins = self.counts.len() as f64;
            let idx = ((x - self.lo) / (self.hi - self.lo) * bins) as usize;
            // Guard against floating point landing exactly on `bins`.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Add many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bin_centre, count)` pairs.
    pub fn centres(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }

    /// Total observations inside the range.
    pub fn total_in_range(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Observations that fell below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations that fell at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_correct() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.0, 1.9, 2.0, 5.5, 9.999]);
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total_in_range(), 5);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend([-0.1, 0.5, 1.0, 2.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total_in_range(), 1);
    }

    #[test]
    fn centres_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centres: Vec<f64> = h.centres().iter().map(|&(c, _)| c).collect();
        assert_eq!(centres, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
