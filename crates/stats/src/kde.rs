//! Gaussian kernel density estimation.
//!
//! The paper validates ASN→SNO mappings by plotting the KDE of each
//! ASN's per-session p5 latency and checking the curve against the
//! latency regime its orbit should produce (Figure 2). This module
//! provides the estimator plus the helpers that validation needs: the
//! density on a grid, mode finding, and the probability mass inside a
//! latency band.

/// A Gaussian KDE over a one-dimensional sample.
///
/// ```
/// use sno_stats::Kde;
/// // A bimodal latency sample: MEO cluster at 280 ms, GEO at 680 ms.
/// let sample: Vec<f64> = (0..200)
///     .map(|i| if i % 2 == 0 { 280.0 + (i % 20) as f64 } else { 680.0 + (i % 30) as f64 })
///     .collect();
/// let kde = Kde::fit(&sample).unwrap();
/// assert_eq!(kde.modes_on_grid(0.0, 1000.0, 400, 0.2), 2);
/// assert!(kde.mass_in(150.0, 450.0) > 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct Kde {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Fit with Silverman's rule-of-thumb bandwidth
    /// `0.9 · min(σ, IQR/1.34) · n^(−1/5)`.
    ///
    /// Returns `None` on empty input. Degenerate samples (zero spread)
    /// fall back to a small positive bandwidth so the density stays
    /// well-defined.
    pub fn fit(samples: &[f64]) -> Option<Kde> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        let sigma = crate::quantile::std_dev(&sorted).unwrap_or(0.0);
        let iqr = crate::quantile::quantile_of_sorted(&sorted, 0.75)
            - crate::quantile::quantile_of_sorted(&sorted, 0.25);
        let spread = if iqr > 0.0 {
            sigma.min(iqr / 1.34)
        } else {
            sigma
        };
        let bandwidth = if spread > 0.0 {
            0.9 * spread * n.powf(-0.2)
        } else {
            // Degenerate sample: all points equal (or two equal points).
            // Scale the fallback with the sample magnitude so multi-
            // second regimes get a proportionate kernel; 1 ms stays the
            // floor for everything at or below millisecond scale.
            let mean = sorted.iter().sum::<f64>() / n;
            f64::max(1.0, 1e-3 * mean.abs())
        };
        Some(Kde {
            samples: sorted,
            bandwidth,
        })
    }

    /// Fit with an explicit bandwidth (used by the bandwidth ablation).
    ///
    /// Returns `None` on empty input or non-positive bandwidth.
    pub fn fit_with_bandwidth(samples: &[f64], bandwidth: f64) -> Option<Kde> {
        if samples.is_empty() || bandwidth <= 0.0 {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Kde {
            samples: sorted,
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when there are no samples (cannot happen for a fitted KDE,
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.samples.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
        self.samples
            .iter()
            .map(|&s| {
                let z = (x - s) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Density evaluated on `points` equally spaced points spanning
    /// `[lo, hi]`.
    ///
    /// Delegates to the batched [`Kde::density_grid`], so a whole-grid
    /// evaluation costs one windowed sweep instead of `points` full
    /// kernel sums — with values bitwise-identical to calling
    /// [`Kde::density`] per point.
    ///
    /// # Panics
    /// Panics if `points < 2` or `lo >= hi`.
    pub fn grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        self.density_grid(lo, hi, points)
    }

    /// Batched grid evaluation: the Gaussian sum over all `points`
    /// equally spaced grid points in one pass over the sorted sample.
    ///
    /// Kernel terms farther than `sqrt(1500)` bandwidths from a grid
    /// point satisfy `0.5·z² ≥ 746`, where `exp` underflows to exactly
    /// `+0.0` — and adding `+0.0` to the non-negative accumulator is a
    /// bitwise no-op. Skipping them (the window advances monotonically
    /// with `x`, so both ends move at most once per sample per sweep)
    /// gives sums bitwise-identical to the full per-point evaluation of
    /// [`Kde::density`], in far fewer `exp` calls. (The identity is over
    /// finite samples — the only kind the latency pipelines produce; a
    /// NaN sample poisons the full sum but sorts outside every window.)
    ///
    /// # Panics
    /// Panics if `points < 2` or `lo >= hi`.
    pub fn density_grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two grid points");
        assert!(lo < hi, "empty grid range");
        let h = self.bandwidth;
        let norm = 1.0 / (self.samples.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
        // Conservative underflow radius: |x − s| > w ⇒ 0.5·((x−s)/h)²
        // clears 746 even after rounding, where exp is exactly +0.0.
        let w = h * 1500.0_f64.sqrt();
        let step = (hi - lo) / (points - 1) as f64;
        let mut start = 0usize;
        let mut end = 0usize;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                while start < self.samples.len() && self.samples[start] < x - w {
                    start += 1;
                }
                end = end.max(start);
                while end < self.samples.len() && self.samples[end] <= x + w {
                    end += 1;
                }
                let sum: f64 = self.samples[start..end]
                    .iter()
                    .map(|&s| {
                        let z = (x - s) / h;
                        (-0.5 * z * z).exp()
                    })
                    .sum();
                (x, sum * norm)
            })
            .collect()
    }

    /// The grid point with the highest density (the distribution's main
    /// mode, up to grid resolution).
    pub fn mode_on_grid(&self, lo: f64, hi: f64, points: usize) -> f64 {
        self.grid(lo, hi, points)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or(lo, |(x, _)| x)
    }

    /// Fraction of the *sample* falling inside `[lo, hi)`.
    ///
    /// The identification pipeline reasons about mass in latency bands
    /// (e.g. "is there non-trivial mass below 100 ms for a GEO ASN?");
    /// using the empirical mass rather than integrating the smoothed
    /// density keeps band edges crisp.
    pub fn mass_in(&self, lo: f64, hi: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let start = self.samples.partition_point(|&s| s < lo);
        let end = self.samples.partition_point(|&s| s < hi);
        (end - start) as f64 / self.samples.len() as f64
    }

    /// Count of local maxima in the gridded density that rise above
    /// `min_height` × the global maximum — used to detect bimodal
    /// (hybrid MEO+GEO) profiles.
    pub fn modes_on_grid(&self, lo: f64, hi: f64, points: usize, min_height: f64) -> usize {
        let grid = self.grid(lo, hi, points);
        let peak = grid.iter().map(|&(_, d)| d).fold(0.0_f64, f64::max);
        if peak <= 0.0 {
            return 0;
        }
        let threshold = peak * min_height;
        let mut modes = 0;
        for i in 1..grid.len() - 1 {
            let (_, d) = grid[i];
            if d > threshold && d >= grid[i - 1].1 && d > grid[i + 1].1 {
                modes += 1;
            }
        }
        modes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_rejected() {
        assert!(Kde::fit(&[]).is_none());
        assert!(Kde::fit_with_bandwidth(&[], 1.0).is_none());
        assert!(Kde::fit_with_bandwidth(&[1.0], 0.0).is_none());
    }

    #[test]
    fn density_integrates_to_one() {
        let samples = [10.0, 12.0, 11.0, 9.5, 10.5, 30.0, 31.0, 29.0];
        let kde = Kde::fit(&samples).unwrap();
        // Trapezoidal integration over a generous range.
        let grid = kde.grid(-50.0, 100.0, 4_000);
        let mut integral = 0.0;
        for w in grid.windows(2) {
            let dx = w[1].0 - w[0].0;
            integral += 0.5 * (w[0].1 + w[1].1) * dx;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn mode_near_cluster_centre() {
        // Peaked (normal) sample centred at Starlink's 56 ms median.
        let mut rng = sno_types::Rng::new(2023);
        let samples: Vec<f64> = (0..500).map(|_| rng.normal_with(56.0, 4.0)).collect();
        let kde = Kde::fit(&samples).unwrap();
        let mode = kde.mode_on_grid(0.0, 200.0, 800);
        assert!((mode - 56.0).abs() < 2.0, "mode {mode}");
    }

    #[test]
    fn bimodal_sample_has_two_modes() {
        // MEO-ish cluster at 220 ms, GEO-ish cluster at 700 ms.
        let mut samples = Vec::new();
        for i in 0..150 {
            samples.push(220.0 + (i % 21) as f64 - 10.0);
            samples.push(700.0 + (i % 31) as f64 - 15.0);
        }
        let kde = Kde::fit(&samples).unwrap();
        assert_eq!(kde.modes_on_grid(0.0, 1000.0, 500, 0.25), 2);
    }

    #[test]
    fn unimodal_sample_has_one_mode() {
        let samples: Vec<f64> = (0..300).map(|i| 700.0 + (i % 41) as f64).collect();
        let kde = Kde::fit(&samples).unwrap();
        assert_eq!(kde.modes_on_grid(0.0, 1000.0, 500, 0.25), 1);
    }

    #[test]
    fn mass_in_bands() {
        let samples = [10.0, 20.0, 30.0, 600.0, 610.0];
        let kde = Kde::fit(&samples).unwrap();
        assert!((kde.mass_in(0.0, 100.0) - 0.6).abs() < 1e-12);
        assert!((kde.mass_in(500.0, 700.0) - 0.4).abs() < 1e-12);
        assert_eq!(kde.mass_in(1000.0, 2000.0), 0.0);
    }

    #[test]
    fn degenerate_sample_is_finite() {
        let kde = Kde::fit(&[5.0, 5.0, 5.0]).unwrap();
        assert!(kde.density(5.0).is_finite());
        assert!(kde.density(5.0) > kde.density(10.0));
    }

    #[test]
    fn degenerate_bandwidth_scales_with_magnitude() {
        // Sub-millisecond regime: the 1 ms floor holds.
        let sub_ms = Kde::fit(&[0.0005, 0.0005, 0.0005]).unwrap();
        assert_eq!(sub_ms.bandwidth(), 1.0);
        assert!(sub_ms.density(0.0005).is_finite());
        // Multi-second regime: the fallback is proportional (5 ms for a
        // 5 000 ms sample), not a fixed 1 ms spike.
        let multi_s = Kde::fit(&[5_000.0, 5_000.0, 5_000.0]).unwrap();
        assert_eq!(multi_s.bandwidth(), 5.0);
        assert!(multi_s.density(5_000.0).is_finite());
        assert!(multi_s.density(5_000.0) > multi_s.density(5_100.0));
        // Sign does not matter; the magnitude does.
        let negative = Kde::fit(&[-5_000.0, -5_000.0]).unwrap();
        assert_eq!(negative.bandwidth(), 5.0);
    }

    #[test]
    fn batched_grid_matches_pointwise_density_bitwise() {
        let mut rng = sno_types::Rng::new(41);
        let samples: Vec<f64> = (0..400)
            .map(|i| {
                if i % 2 == 0 {
                    rng.normal_with(56.0, 6.0)
                } else {
                    rng.normal_with(680.0, 45.0)
                }
            })
            .collect();
        let kde = Kde::fit(&samples).unwrap();
        // A wide grid so most points see only a small sample window.
        for (x, d) in kde.density_grid(-500.0, 2_000.0, 1_000) {
            assert_eq!(d.to_bits(), kde.density(x).to_bits(), "x {x}");
        }
        assert_eq!(
            kde.grid(0.0, 1_200.0, 400),
            kde.density_grid(0.0, 1_200.0, 400)
        );
    }

    #[test]
    fn silverman_bandwidth_shrinks_with_n() {
        let small: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 20) as f64).collect();
        let ks = Kde::fit(&small).unwrap();
        let kl = Kde::fit(&large).unwrap();
        assert!(kl.bandwidth() < ks.bandwidth());
    }
}
