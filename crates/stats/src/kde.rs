//! Gaussian kernel density estimation.
//!
//! The paper validates ASN→SNO mappings by plotting the KDE of each
//! ASN's per-session p5 latency and checking the curve against the
//! latency regime its orbit should produce (Figure 2). This module
//! provides the estimator plus the helpers that validation needs: the
//! density on a grid, mode finding, and the probability mass inside a
//! latency band.

/// A Gaussian KDE over a one-dimensional sample.
///
/// ```
/// use sno_stats::Kde;
/// // A bimodal latency sample: MEO cluster at 280 ms, GEO at 680 ms.
/// let sample: Vec<f64> = (0..200)
///     .map(|i| if i % 2 == 0 { 280.0 + (i % 20) as f64 } else { 680.0 + (i % 30) as f64 })
///     .collect();
/// let kde = Kde::fit(&sample).unwrap();
/// assert_eq!(kde.modes_on_grid(0.0, 1000.0, 400, 0.2), 2);
/// assert!(kde.mass_in(150.0, 450.0) > 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct Kde {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Fit with Silverman's rule-of-thumb bandwidth
    /// `0.9 · min(σ, IQR/1.34) · n^(−1/5)`.
    ///
    /// Returns `None` on empty input. Degenerate samples (zero spread)
    /// fall back to a small positive bandwidth so the density stays
    /// well-defined.
    pub fn fit(samples: &[f64]) -> Option<Kde> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        let sigma = crate::quantile::std_dev(&sorted).unwrap_or(0.0);
        let iqr = crate::quantile::quantile_of_sorted(&sorted, 0.75)
            - crate::quantile::quantile_of_sorted(&sorted, 0.25);
        let spread = if iqr > 0.0 {
            sigma.min(iqr / 1.34)
        } else {
            sigma
        };
        let bandwidth = if spread > 0.0 {
            0.9 * spread * n.powf(-0.2)
        } else {
            // Degenerate sample: all points equal (or two equal points).
            1.0
        };
        Some(Kde {
            samples: sorted,
            bandwidth,
        })
    }

    /// Fit with an explicit bandwidth (used by the bandwidth ablation).
    ///
    /// Returns `None` on empty input or non-positive bandwidth.
    pub fn fit_with_bandwidth(samples: &[f64], bandwidth: f64) -> Option<Kde> {
        if samples.is_empty() || bandwidth <= 0.0 {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Kde {
            samples: sorted,
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when there are no samples (cannot happen for a fitted KDE,
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.samples.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
        self.samples
            .iter()
            .map(|&s| {
                let z = (x - s) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Density evaluated on `points` equally spaced points spanning
    /// `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `points < 2` or `lo >= hi`.
    pub fn grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two grid points");
        assert!(lo < hi, "empty grid range");
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.density(x))
            })
            .collect()
    }

    /// The grid point with the highest density (the distribution's main
    /// mode, up to grid resolution).
    pub fn mode_on_grid(&self, lo: f64, hi: f64, points: usize) -> f64 {
        self.grid(lo, hi, points)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or(lo, |(x, _)| x)
    }

    /// Fraction of the *sample* falling inside `[lo, hi)`.
    ///
    /// The identification pipeline reasons about mass in latency bands
    /// (e.g. "is there non-trivial mass below 100 ms for a GEO ASN?");
    /// using the empirical mass rather than integrating the smoothed
    /// density keeps band edges crisp.
    pub fn mass_in(&self, lo: f64, hi: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let start = self.samples.partition_point(|&s| s < lo);
        let end = self.samples.partition_point(|&s| s < hi);
        (end - start) as f64 / self.samples.len() as f64
    }

    /// Count of local maxima in the gridded density that rise above
    /// `min_height` × the global maximum — used to detect bimodal
    /// (hybrid MEO+GEO) profiles.
    pub fn modes_on_grid(&self, lo: f64, hi: f64, points: usize, min_height: f64) -> usize {
        let grid = self.grid(lo, hi, points);
        let peak = grid.iter().map(|&(_, d)| d).fold(0.0_f64, f64::max);
        if peak <= 0.0 {
            return 0;
        }
        let threshold = peak * min_height;
        let mut modes = 0;
        for i in 1..grid.len() - 1 {
            let (_, d) = grid[i];
            if d > threshold && d >= grid[i - 1].1 && d > grid[i + 1].1 {
                modes += 1;
            }
        }
        modes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_rejected() {
        assert!(Kde::fit(&[]).is_none());
        assert!(Kde::fit_with_bandwidth(&[], 1.0).is_none());
        assert!(Kde::fit_with_bandwidth(&[1.0], 0.0).is_none());
    }

    #[test]
    fn density_integrates_to_one() {
        let samples = [10.0, 12.0, 11.0, 9.5, 10.5, 30.0, 31.0, 29.0];
        let kde = Kde::fit(&samples).unwrap();
        // Trapezoidal integration over a generous range.
        let grid = kde.grid(-50.0, 100.0, 4_000);
        let mut integral = 0.0;
        for w in grid.windows(2) {
            let dx = w[1].0 - w[0].0;
            integral += 0.5 * (w[0].1 + w[1].1) * dx;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn mode_near_cluster_centre() {
        // Peaked (normal) sample centred at Starlink's 56 ms median.
        let mut rng = sno_types::Rng::new(2023);
        let samples: Vec<f64> = (0..500).map(|_| rng.normal_with(56.0, 4.0)).collect();
        let kde = Kde::fit(&samples).unwrap();
        let mode = kde.mode_on_grid(0.0, 200.0, 800);
        assert!((mode - 56.0).abs() < 2.0, "mode {mode}");
    }

    #[test]
    fn bimodal_sample_has_two_modes() {
        // MEO-ish cluster at 220 ms, GEO-ish cluster at 700 ms.
        let mut samples = Vec::new();
        for i in 0..150 {
            samples.push(220.0 + (i % 21) as f64 - 10.0);
            samples.push(700.0 + (i % 31) as f64 - 15.0);
        }
        let kde = Kde::fit(&samples).unwrap();
        assert_eq!(kde.modes_on_grid(0.0, 1000.0, 500, 0.25), 2);
    }

    #[test]
    fn unimodal_sample_has_one_mode() {
        let samples: Vec<f64> = (0..300).map(|i| 700.0 + (i % 41) as f64).collect();
        let kde = Kde::fit(&samples).unwrap();
        assert_eq!(kde.modes_on_grid(0.0, 1000.0, 500, 0.25), 1);
    }

    #[test]
    fn mass_in_bands() {
        let samples = [10.0, 20.0, 30.0, 600.0, 610.0];
        let kde = Kde::fit(&samples).unwrap();
        assert!((kde.mass_in(0.0, 100.0) - 0.6).abs() < 1e-12);
        assert!((kde.mass_in(500.0, 700.0) - 0.4).abs() < 1e-12);
        assert_eq!(kde.mass_in(1000.0, 2000.0), 0.0);
    }

    #[test]
    fn degenerate_sample_is_finite() {
        let kde = Kde::fit(&[5.0, 5.0, 5.0]).unwrap();
        assert!(kde.density(5.0).is_finite());
        assert!(kde.density(5.0) > kde.density(10.0));
    }

    #[test]
    fn silverman_bandwidth_shrinks_with_n() {
        let small: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 20) as f64).collect();
        let ks = Kde::fit(&small).unwrap();
        let kl = Kde::fit(&large).unwrap();
        assert!(kl.bandwidth() < ks.bandwidth());
    }
}
