//! Empirical cumulative distribution functions.

use crate::sketch::QuantileSketch;

/// An empirical CDF over a one-dimensional sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a (possibly unsorted) sample. `None` on empty input.
    pub fn new(samples: &[f64]) -> Option<Ecdf> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ecdf::from_sorted(sorted)
    }

    /// Build from an already-sorted sample without re-sorting — for
    /// callers that sort once and derive several statistics from the
    /// same samples. `None` on empty input.
    pub fn from_sorted(sorted: Vec<f64>) -> Option<Ecdf> {
        if sorted.is_empty() {
            return None;
        }
        debug_assert!(
            sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            "input must be sorted"
        );
        Some(Ecdf { sorted })
    }

    /// Expand a streaming [`QuantileSketch`] into the ECDF of its
    /// weighted representatives (already sorted by construction). Step
    /// positions carry the sketch's bounded relative error. `None` on an
    /// empty sketch.
    pub fn from_sketch(sketch: &QuantileSketch) -> Option<Ecdf> {
        if sketch.is_empty() {
            return None;
        }
        let mut sorted = Vec::with_capacity(sketch.count() as usize);
        for (v, c) in sketch.weighted_values() {
            sorted.extend(std::iter::repeat_n(v, c as usize));
        }
        Some(Ecdf { sorted })
    }

    /// `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        let k = self.sorted.partition_point(|&s| s <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// `P(X >= x)` (complementary CDF with closed lower bound).
    pub fn tail_at_least(&self, x: f64) -> f64 {
        let k = self.sorted.partition_point(|&s| s < x);
        (self.sorted.len() - k) as f64 / self.sorted.len() as f64
    }

    /// The smallest sample value `v` with `eval(v) >= q` (inverse CDF).
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1]`.
    pub fn inverse(&self, q: f64) -> f64 {
        assert!(
            q > 0.0 && q <= 1.0,
            "inverse CDF fraction out of range: {q}"
        );
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Median of the sample.
    pub fn median(&self) -> f64 {
        crate::quantile::quantile_of_sorted(&self.sorted, 0.5)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction requires a non-empty sample); provided
    /// for API completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `(x, F(x))` pairs for each distinct sample value — the staircase a
    /// CDF plot draws.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = f,
                _ => out.push((x, f)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rejected() {
        assert!(Ecdf::new(&[]).is_none());
    }

    #[test]
    fn eval_basic() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn tail_at_least_counts_closed_bound() {
        // "over 80% of the GEO trace exhibited a jitter of 100ms or more"
        let e = Ecdf::new(&[50.0, 100.0, 150.0, 200.0, 300.0]).unwrap();
        assert!((e.tail_at_least(100.0) - 0.8).abs() < 1e-12);
        assert!((e.tail_at_least(301.0) - 0.0).abs() < 1e-12);
        assert!((e.tail_at_least(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_is_right_continuous() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.inverse(0.25), 10.0);
        assert_eq!(e.inverse(0.26), 20.0);
        assert_eq!(e.inverse(1.0), 40.0);
    }

    #[test]
    fn median_matches_quantile() {
        let e = Ecdf::new(&[5.0, 1.0, 9.0]).unwrap();
        assert_eq!(e.median(), 5.0);
    }

    #[test]
    fn steps_deduplicate_ties() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]).unwrap();
        let steps = e.steps();
        assert_eq!(steps.len(), 2);
        assert!((steps[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(steps[1], (2.0, 1.0));
    }

    #[test]
    fn eval_monotone() {
        let e = Ecdf::new(&[3.0, 1.0, 4.0, 1.0, 5.0]).unwrap();
        let mut prev = -1.0;
        for i in 0..60 {
            let f = e.eval(i as f64 / 10.0);
            assert!(f >= prev);
            prev = f;
        }
    }
}
