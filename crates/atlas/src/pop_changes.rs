//! Longitudinal PoP-change detection (Figure 8b).
//!
//! The probe→PoP RTT series of most probes is statistically flat over
//! the year. A PoP reassignment shows up as a sustained level shift; we
//! find those with mean-shift segmentation and cross-check each detected
//! shift against the reverse-DNS PoP history, attributing the shift to a
//! PoP change when one happened nearby in time.

use crate::pop_rtt::{pop_rtt_series, pop_rtt_series_by_probe, pop_rtt_series_from_chunks};
use crate::popmap::{pop_history, PopLink};
use sno_stats::OnlineShiftDetector;
use sno_types::chunk::RecordChunks;
use sno_types::records::{SslCertRecord, TracerouteRecord};
use sno_types::{par, Ipv4, ProbeId, Timestamp};
use std::collections::BTreeMap;

/// One detected RTT level shift, possibly explained by a PoP change.
#[derive(Debug, Clone)]
pub struct PopChange {
    /// The probe.
    pub probe: ProbeId,
    /// When the shift happened (timestamp of the first post-shift
    /// measurement).
    pub at: Timestamp,
    /// Mean RTT before the shift, ms.
    pub before_ms: f64,
    /// Mean RTT after, ms.
    pub after_ms: f64,
    /// The PoP codes involved, when the reverse-DNS history confirms a
    /// change within `attribution_window_secs` of the shift:
    /// `(old, new)`.
    pub pops: Option<(&'static str, &'static str)>,
}

/// How close (in seconds) a reverse-DNS transition must be to an RTT
/// shift to be considered its cause (two weeks — generous because the
/// downsampled corpus observes both signals sparsely).
pub const ATTRIBUTION_WINDOW_SECS: u64 = 14 * 86_400;

/// Detect level shifts of at least `min_shift_ms` (sustained for at
/// least `min_segment` measurements) in one probe's RTT series, and
/// attribute them to PoP changes from `history`.
pub fn detect_pop_changes(
    traceroutes: &[TracerouteRecord],
    probe: ProbeId,
    history: &[PopLink],
    min_shift_ms: f64,
    min_segment: usize,
) -> Vec<PopChange> {
    detect_in_series(
        &pop_rtt_series(traceroutes, probe),
        probe,
        history,
        min_shift_ms,
        min_segment,
    )
}

/// Detect PoP changes for **every** probe: one pass buckets all RTT
/// series and SSLCert histories, then the per-probe segmentations run
/// on the worker pool (`threads`, `0` = all cores). Results merge in
/// ascending probe order, so the output is identical at every thread
/// count — and identical to calling [`detect_pop_changes`] per probe,
/// without its per-probe rescan of the whole corpus.
pub fn detect_all_pop_changes(
    traceroutes: &[TracerouteRecord],
    sslcerts: &[SslCertRecord],
    resolve: impl Fn(Ipv4) -> Option<String> + Sync,
    min_shift_ms: f64,
    min_segment: usize,
    threads: usize,
) -> Vec<PopChange> {
    detect_all_pop_changes_in_series(
        &pop_rtt_series_by_probe(traceroutes),
        sslcerts,
        resolve,
        min_shift_ms,
        min_segment,
        threads,
    )
}

/// [`detect_all_pop_changes`] over chunked traceroute *and* SSLCert
/// streams: only the per-probe RTT series and per-probe cert histories
/// are ever resident, never a record corpus. The series builder is
/// order-insensitive (stable per-series timestamp sort) and cert
/// bucketing preserves each probe's arrival order, so the result is
/// byte-identical to the materialized call for any stream whose
/// per-probe cert subsequences match the materialized corpus (the
/// synthesizer's chunked and sorted forms both deliver each probe's
/// certs chronologically).
pub fn detect_all_pop_changes_streamed<C, D>(
    stream: C,
    sslcerts: D,
    resolve: impl Fn(Ipv4) -> Option<String> + Sync,
    min_shift_ms: f64,
    min_segment: usize,
    threads: usize,
) -> Vec<PopChange>
where
    C: RecordChunks<Item = TracerouteRecord>,
    D: RecordChunks<Item = SslCertRecord>,
{
    detect_in_buckets(
        &pop_rtt_series_from_chunks(stream),
        &cert_buckets_from_chunks(sslcerts),
        resolve,
        min_shift_ms,
        min_segment,
        threads,
    )
}

/// Bucket a materialized cert corpus per probe, preserving order.
fn cert_buckets(sslcerts: &[SslCertRecord]) -> BTreeMap<ProbeId, Vec<SslCertRecord>> {
    let mut certs: BTreeMap<ProbeId, Vec<SslCertRecord>> = BTreeMap::new();
    for s in sslcerts {
        certs.entry(s.probe).or_default().push(*s);
    }
    certs
}

/// Bucket a chunked cert stream per probe without materializing it.
pub fn cert_buckets_from_chunks<D>(stream: D) -> BTreeMap<ProbeId, Vec<SslCertRecord>>
where
    D: RecordChunks<Item = SslCertRecord>,
{
    stream.fold_records(BTreeMap::new(), |mut certs: BTreeMap<_, Vec<_>>, s| {
        certs.entry(s.probe).or_default().push(s);
        certs
    })
}

/// The shared core of the all-probe detectors: per-probe segmentations
/// run on the worker pool over pre-built RTT series, merged in
/// ascending probe order.
pub fn detect_all_pop_changes_in_series(
    series: &BTreeMap<ProbeId, Vec<(Timestamp, f64)>>,
    sslcerts: &[SslCertRecord],
    resolve: impl Fn(Ipv4) -> Option<String> + Sync,
    min_shift_ms: f64,
    min_segment: usize,
    threads: usize,
) -> Vec<PopChange> {
    detect_in_buckets(
        series,
        &cert_buckets(sslcerts),
        resolve,
        min_shift_ms,
        min_segment,
        threads,
    )
}

/// Innermost core: RTT series and cert histories already bucketed per
/// probe.
fn detect_in_buckets(
    series: &BTreeMap<ProbeId, Vec<(Timestamp, f64)>>,
    certs: &BTreeMap<ProbeId, Vec<SslCertRecord>>,
    resolve: impl Fn(Ipv4) -> Option<String> + Sync,
    min_shift_ms: f64,
    min_segment: usize,
    threads: usize,
) -> Vec<PopChange> {
    let probes: Vec<&ProbeId> = series.keys().collect();
    let per_probe = par::shard_map(probes.len(), threads, |i| {
        let probe = *probes[i];
        let history = certs
            .get(&probe)
            .map(|c| pop_history(c, probe, &resolve))
            .unwrap_or_default();
        detect_in_series(&series[&probe], probe, &history, min_shift_ms, min_segment)
    });
    per_probe.into_iter().flatten().collect()
}

/// Segment one probe's RTT series and attribute the shifts.
///
/// Runs through the *online* changepoint detector
/// ([`sno_stats::OnlineShiftDetector`]), which replays the batch
/// segmentation over its buffered window — so the batch entry points and
/// the incremental [`PopChangeMonitor`] share one detection path with
/// identical results.
fn detect_in_series(
    series: &[(Timestamp, f64)],
    probe: ProbeId,
    history: &[PopLink],
    min_shift_ms: f64,
    min_segment: usize,
) -> Vec<PopChange> {
    if series.len() < 2 * min_segment {
        return Vec::new();
    }
    let mut detector = OnlineShiftDetector::new(min_shift_ms, min_segment);
    for &(_, v) in series {
        detector.push(v);
    }
    detector
        .shifts()
        .into_iter()
        .map(|shift| {
            let at = series[shift.index].0;
            let pops = attribute(history, at);
            PopChange {
                probe,
                at,
                before_ms: shift.before,
                after_ms: shift.after,
                pops,
            }
        })
        .collect()
}

/// Incremental front-end to [`detect_all_pop_changes`]: ingest
/// traceroute and SSLCert chunks as they arrive, detect on demand.
///
/// Only the per-probe `(timestamp, rtt)` series and the cert records are
/// resident — never the traceroutes. Monitors built over disjoint shards
/// of a stream [`merge`](PopChangeMonitor::merge) into the state serial
/// ingest builds, and [`detect`](PopChangeMonitor::detect) stably sorts
/// each series by timestamp before segmenting (exactly as the batch
/// series builders do), so detection over any ingest sharding is
/// identical to [`detect_all_pop_changes`] over the materialized corpus.
#[derive(Debug, Clone, Default)]
pub struct PopChangeMonitor {
    series: BTreeMap<ProbeId, Vec<(Timestamp, f64)>>,
    sslcerts: Vec<SslCertRecord>,
}

impl PopChangeMonitor {
    /// An empty monitor.
    pub fn new() -> PopChangeMonitor {
        PopChangeMonitor::default()
    }

    /// Ingest one chunk of traceroutes: each record's CGNAT-gateway RTT
    /// (when present) joins its probe's series.
    pub fn ingest_traceroutes(&mut self, chunk: &[TracerouteRecord]) {
        for t in chunk {
            if let Some(rtt) = t.cgnat_rtt() {
                self.series
                    .entry(t.probe)
                    .or_default()
                    .push((t.timestamp, rtt.0));
            }
        }
    }

    /// Drain a chunked traceroute stream into the monitor.
    pub fn ingest_traceroute_chunks<C>(&mut self, mut stream: C)
    where
        C: RecordChunks<Item = TracerouteRecord>,
    {
        while let Some(chunk) = stream.next_chunk() {
            self.ingest_traceroutes(&chunk);
        }
    }

    /// Ingest one chunk of SSLCert observations (the PoP-history side).
    pub fn ingest_sslcerts(&mut self, certs: &[SslCertRecord]) {
        self.sslcerts.extend_from_slice(certs);
    }

    /// Merge another monitor (built over the *following* shard of the
    /// stream) into this one.
    pub fn merge(&mut self, other: PopChangeMonitor) {
        for (probe, mut samples) in other.series {
            self.series.entry(probe).or_default().append(&mut samples);
        }
        self.sslcerts.extend_from_slice(&other.sslcerts);
    }

    /// Probes with at least one RTT sample.
    pub fn probes(&self) -> usize {
        self.series.len()
    }

    /// RTT samples ingested across all probes.
    pub fn samples(&self) -> usize {
        self.series.values().map(Vec::len).sum()
    }

    /// Detect and attribute PoP changes over everything ingested so
    /// far. Identical to [`detect_all_pop_changes`] over the
    /// materialized corpus, at every thread count.
    pub fn detect(
        &self,
        resolve: impl Fn(Ipv4) -> Option<String> + Sync,
        min_shift_ms: f64,
        min_segment: usize,
        threads: usize,
    ) -> Vec<PopChange> {
        let mut series = self.series.clone();
        for s in series.values_mut() {
            // Stable sort, as in `pop_rtt_series_by_probe`, so any
            // ingest sharding converges on the same series.
            s.sort_by_key(|&(ts, _)| ts);
        }
        detect_all_pop_changes_in_series(
            &series,
            &self.sslcerts,
            resolve,
            min_shift_ms,
            min_segment,
            threads,
        )
    }
}

/// Find the PoP transition nearest to `at`, within the attribution
/// window.
fn attribute(history: &[PopLink], at: Timestamp) -> Option<(&'static str, &'static str)> {
    let mut best: Option<(u64, (&'static str, &'static str))> = None;
    for w in history.windows(2) {
        let boundary = w[1].first_seen;
        let distance = boundary.0.abs_diff(at.0);
        if distance <= ATTRIBUTION_WINDOW_SECS && best.is_none_or(|(d, _)| distance < d) {
            best = Some((distance, (w[0].pop.code, w[1].pop.code)));
        }
    }
    best.map(|(_, pops)| pops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pop_rtt::tests::corpus;
    use crate::popmap::pop_history;
    use sno_types::records::CountryCode;

    fn changes_for(probe: ProbeId) -> Vec<PopChange> {
        let c = corpus();
        let history = pop_history(&c.sslcerts, probe, sno_synth::atlas::reverse_dns);
        detect_pop_changes(&c.traceroutes, probe, &history, 8.0, 8)
    }

    #[test]
    fn nz_shift_detected_and_attributed() {
        let c = corpus();
        let nz = c
            .probes
            .iter()
            .find(|p| p.country == CountryCode::new("NZ"))
            .unwrap();
        let changes = changes_for(nz.id);
        assert_eq!(changes.len(), 1, "{changes:?}");
        let ch = &changes[0];
        // ~20 ms improvement when Sydney → Auckland.
        assert!(ch.after_ms < ch.before_ms - 10.0, "{ch:?}");
        assert_eq!(ch.pops, Some(("sydnaus1", "aklnnzl1")));
        let when = ch.at.date();
        assert_eq!((when.year, when.month), (2022, 7), "{when}");
    }

    #[test]
    fn nevada_shows_regression_and_revert() {
        let c = corpus();
        let nv = c.probes.iter().find(|p| p.state == Some("NV")).unwrap();
        let changes = changes_for(nv.id);
        assert_eq!(changes.len(), 2, "{changes:?}");
        assert!(
            changes[0].after_ms > changes[0].before_ms,
            "regression first"
        );
        assert!(changes[1].after_ms < changes[1].before_ms, "then revert");
        assert_eq!(changes[0].pops, Some(("lsancax1", "dnvrcox1")));
        assert_eq!(changes[1].pops, Some(("dnvrcox1", "lsancax1")));
    }

    #[test]
    fn netherlands_drop_attributed_to_london() {
        let c = corpus();
        let nl = c
            .probes
            .iter()
            .find(|p| p.country == CountryCode::new("NL"))
            .unwrap();
        let changes = changes_for(nl.id);
        assert_eq!(changes.len(), 1, "{changes:?}");
        assert_eq!(changes[0].pops, Some(("frntdeu1", "lndngbr1")));
        assert!(changes[0].after_ms < changes[0].before_ms);
    }

    #[test]
    fn stable_probes_report_no_changes() {
        let c = corpus();
        let mut stable = 0;
        for p in c
            .probes
            .iter()
            .filter(|p| matches!(p.country.as_str(), "DE" | "GB" | "AT" | "CA"))
        {
            let changes = changes_for(p.id);
            assert!(changes.is_empty(), "{}: {changes:?}", p.id);
            stable += 1;
        }
        assert!(stable >= 8);
    }

    #[test]
    fn short_series_yields_nothing() {
        let c = corpus();
        let changes = detect_pop_changes(&c.traceroutes, ProbeId(99_999), &[], 8.0, 8);
        assert!(changes.is_empty());
    }

    #[test]
    fn streamed_detection_matches_materialized() {
        use sno_synth::{AtlasGenerator, SynthConfig};
        let c = corpus();
        let expect = detect_all_pop_changes(
            &c.traceroutes,
            &c.sslcerts,
            sno_synth::atlas::reverse_dns,
            8.0,
            8,
            1,
        );
        for (chunk_len, threads) in [(512usize, 1usize), (usize::MAX, 2)] {
            let mut config = SynthConfig::test_corpus();
            config.threads = threads;
            let gen = AtlasGenerator::new(config);
            let got = detect_all_pop_changes_streamed(
                gen.traceroute_chunks(chunk_len),
                gen.sslcert_chunks(chunk_len),
                sno_synth::atlas::reverse_dns,
                8.0,
                8,
                threads,
            );
            assert_eq!(
                got.len(),
                expect.len(),
                "chunk {chunk_len} threads {threads}"
            );
            for (a, b) in got.iter().zip(&expect) {
                assert_eq!((a.probe, a.at, a.pops), (b.probe, b.at, b.pops));
                assert_eq!(a.before_ms, b.before_ms);
                assert_eq!(a.after_ms, b.after_ms);
            }
        }
    }

    #[test]
    fn monitor_matches_batch_detection() {
        let c = corpus();
        let expect = detect_all_pop_changes(
            &c.traceroutes,
            &c.sslcerts,
            sno_synth::atlas::reverse_dns,
            8.0,
            8,
            1,
        );
        assert!(!expect.is_empty());
        // Chunked serial ingest.
        let mut monitor = PopChangeMonitor::new();
        for chunk in c.traceroutes.chunks(517) {
            monitor.ingest_traceroutes(chunk);
        }
        for chunk in c.sslcerts.chunks(64) {
            monitor.ingest_sslcerts(chunk);
        }
        assert_eq!(
            monitor.samples(),
            pop_rtt_series_by_probe(&c.traceroutes)
                .values()
                .map(Vec::len)
                .sum::<usize>()
        );
        // Sharded ingest merged in shard order.
        let bounds = [0, c.traceroutes.len() / 3, c.traceroutes.len()];
        let shards: Vec<PopChangeMonitor> = par::shard_map(2, 2, |i| {
            let mut shard = PopChangeMonitor::new();
            shard.ingest_traceroutes(&c.traceroutes[bounds[i]..bounds[i + 1]]);
            shard
        });
        let mut merged = PopChangeMonitor::new();
        for shard in shards {
            merged.merge(shard);
        }
        merged.ingest_sslcerts(&c.sslcerts);
        assert_eq!(merged.probes(), monitor.probes());
        for (threads, m) in [(1usize, &monitor), (2, &merged), (8, &monitor)] {
            let got = m.detect(sno_synth::atlas::reverse_dns, 8.0, 8, threads);
            assert_eq!(got.len(), expect.len(), "threads {threads}");
            for (a, b) in got.iter().zip(&expect) {
                assert_eq!((a.probe, a.at, a.pops), (b.probe, b.at, b.pops));
                assert_eq!(a.before_ms, b.before_ms);
                assert_eq!(a.after_ms, b.after_ms);
            }
        }
    }

    #[test]
    fn all_probe_detection_matches_per_probe_loop() {
        let c = corpus();
        for threads in [1, 2, 8] {
            let all = detect_all_pop_changes(
                &c.traceroutes,
                &c.sslcerts,
                sno_synth::atlas::reverse_dns,
                8.0,
                8,
                threads,
            );
            let mut expect = Vec::new();
            for p in &c.probes {
                let history = pop_history(&c.sslcerts, p.id, sno_synth::atlas::reverse_dns);
                expect.extend(detect_pop_changes(&c.traceroutes, p.id, &history, 8.0, 8));
            }
            assert_eq!(all.len(), expect.len(), "threads {threads}");
            for (a, b) in all.iter().zip(&expect) {
                assert_eq!(a.probe, b.probe);
                assert_eq!(a.at, b.at);
                assert_eq!(a.before_ms, b.before_ms);
                assert_eq!(a.after_ms, b.after_ms);
                assert_eq!(a.pops, b.pops);
            }
        }
    }
}
