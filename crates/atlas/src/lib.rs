//! Section 5's Starlink analyses over RIPE-Atlas-style data.
//!
//! Everything operates on plain record slices plus light probe metadata,
//! so the analyses run unchanged whether the records come from the
//! synthetic deployment or a real BigQuery export:
//!
//! * [`summary`] — the Table 2 per-country dataset summary;
//! * [`pop_rtt`] — probe→PoP RTT (the `100.64.0.1` CGNAT hop) grouped by
//!   country (Figure 6a) and by US state/region (Figure 8a);
//! * [`popmap`] — PoP geolocation from SSLCert source addresses and
//!   reverse DNS, including the active/inactive link history (Figure 7);
//! * [`root_dns`] — RTT and hop counts to the 13 root letters
//!   (Figures 6b, 6c);
//! * [`pop_changes`] — longitudinal PoP-change detection by mean-shift
//!   segmentation of the RTT series, cross-checked against the
//!   reverse-DNS history (Figure 8b).

pub mod pop_changes;
pub mod pop_rtt;
pub mod popmap;
pub mod root_dns;
pub mod summary;

pub use pop_changes::{
    cert_buckets_from_chunks, detect_all_pop_changes, detect_all_pop_changes_in_series,
    detect_all_pop_changes_streamed, detect_pop_changes, PopChange, PopChangeMonitor,
};
pub use pop_rtt::{
    pop_rtt_by_country, pop_rtt_by_state, pop_rtt_series_by_probe, pop_rtt_series_from_chunks,
    ProbeIndex, ProbeInfo,
};
pub use popmap::{pop_history, PopLink};
pub use root_dns::{hops_by_country, root_rtt_by_country};
pub use summary::{country_summary, CountrySummary};
