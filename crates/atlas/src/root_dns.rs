//! RTT and hop counts to the 13 root DNS letters.

use crate::pop_rtt::{ProbeIndex, ProbeInfo};
use sno_stats::FiveNumber;
use sno_types::records::{CountryCode, TracerouteRecord};
use std::collections::BTreeMap;

/// Figure 6b: end-to-end RTT to root servers per country (non-US),
/// sorted by median ascending.
pub fn root_rtt_by_country(
    traceroutes: &[TracerouteRecord],
    probes: &[ProbeInfo],
) -> Vec<(CountryCode, FiveNumber)> {
    let index = ProbeIndex::new(probes);
    let mut by_country: BTreeMap<CountryCode, Vec<f64>> = BTreeMap::new();
    for t in traceroutes {
        let Some(info) = index.get(t.probe) else {
            continue;
        };
        if info.country == CountryCode::new("US") {
            continue;
        }
        if let Some(rtt) = t.end_to_end_rtt() {
            by_country.entry(info.country).or_default().push(rtt.0);
        }
    }
    let mut out: Vec<(CountryCode, FiveNumber)> = by_country
        .into_iter()
        .filter_map(|(c, v)| FiveNumber::of(&v).map(|s| (c, s)))
        .collect();
    out.sort_by(|a, b| a.1.median.total_cmp(&b.1.median));
    out
}

/// Figure 6c: hop-count distributions per country (non-US), sorted by
/// median ascending.
pub fn hops_by_country(
    traceroutes: &[TracerouteRecord],
    probes: &[ProbeInfo],
) -> Vec<(CountryCode, FiveNumber)> {
    let index = ProbeIndex::new(probes);
    let mut by_country: BTreeMap<CountryCode, Vec<f64>> = BTreeMap::new();
    for t in traceroutes {
        let Some(info) = index.get(t.probe) else {
            continue;
        };
        if info.country == CountryCode::new("US") {
            continue;
        }
        if let Some(h) = t.hop_count() {
            by_country.entry(info.country).or_default().push(h as f64);
        }
    }
    let mut out: Vec<(CountryCode, FiveNumber)> = by_country
        .into_iter()
        .filter_map(|(c, v)| FiveNumber::of(&v).map(|s| (c, s)))
        .collect();
    out.sort_by(|a, b| a.1.median.total_cmp(&b.1.median));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pop_rtt::tests::{corpus, probe_infos};

    fn rtt_row(code: &str) -> FiveNumber {
        root_rtt_by_country(&corpus().traceroutes, &probe_infos())
            .into_iter()
            .find(|(c, _)| *c == CountryCode::new(code))
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("no {code} row"))
    }

    #[test]
    fn european_countries_reach_roots_fastest() {
        // Figure 6b: Europe 40–49 ms median (Spain a touch higher).
        for c in ["DE", "GB", "NL", "AT", "PL", "FR", "BE", "IT"] {
            let m = rtt_row(c).median;
            assert!((33.0..60.0).contains(&m), "{c} {m}");
        }
        let es = rtt_row("ES").median;
        assert!((38.0..75.0).contains(&es), "ES {es}");
    }

    #[test]
    fn chile_pays_extra_for_missing_letters() {
        // Chile is fastest to its PoP but only 7 of 13 letters are local:
        // the other half take long routes, pushing the median above the
        // PoP RTT and widening the spread.
        let cl = rtt_row("CL");
        assert!(cl.median > 38.0, "CL median {}", cl.median);
        assert!(cl.q3 > 80.0, "CL q3 {}", cl.q3);
    }

    #[test]
    fn oceania_needs_long_routes_for_most_queries() {
        let nz = rtt_row("NZ");
        let au = rtt_row("AU");
        assert!(nz.q3 > 80.0, "NZ q3 {}", nz.q3);
        assert!(au.q3 > 80.0, "AU q3 {}", au.q3);
    }

    #[test]
    fn philippines_trails_at_about_200ms() {
        let table = root_rtt_by_country(&corpus().traceroutes, &probe_infos());
        let (last, s) = table.last().unwrap();
        assert_eq!(*last, CountryCode::new("PH"));
        assert!((120.0..260.0).contains(&s.median), "PH {}", s.median);
    }

    #[test]
    fn hop_counts_span_5_to_20() {
        let table = hops_by_country(&corpus().traceroutes, &probe_infos());
        let all_min = table
            .iter()
            .map(|(_, s)| s.min)
            .fold(f64::INFINITY, f64::min);
        let all_max = table.iter().map(|(_, s)| s.max).fold(0.0, f64::max);
        assert!(all_min <= 6.0, "min hops {all_min}");
        assert!(all_max >= 15.0, "max hops {all_max}");
        // Chile shows the extremes: 5-hop local L-root, 15+-hop M-root.
        let cl = table
            .iter()
            .find(|(c, _)| *c == CountryCode::new("CL"))
            .map(|(_, s)| *s)
            .unwrap();
        assert!(cl.min <= 6.0, "CL min {}", cl.min);
        assert!(cl.max >= 14.0, "CL max {}", cl.max);
    }
}
