//! Probe→PoP round-trip times from the CGNAT gateway hop.

use sno_stats::FiveNumber;
use sno_types::chunk::RecordChunks;
use sno_types::records::{CountryCode, TracerouteRecord};
use sno_types::ProbeId;
use std::collections::BTreeMap;

/// Minimal probe metadata the analyses need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeInfo {
    /// Probe identifier.
    pub id: ProbeId,
    /// Country of deployment.
    pub country: CountryCode,
    /// US state postal code, if in the US.
    pub state: Option<&'static str>,
}

/// Sorted probe-metadata index: `O(log P)` id lookups instead of the
/// linear scan per traceroute the analyses used to pay (the summary and
/// grouping passes look a probe up once per traceroute record).
///
/// Duplicate ids keep their first occurrence, matching what a forward
/// linear search over the slice returns.
#[derive(Debug, Clone)]
pub struct ProbeIndex<'a> {
    by_id: Vec<(ProbeId, &'a ProbeInfo)>,
}

impl<'a> ProbeIndex<'a> {
    /// Index a probe-metadata slice.
    pub fn new(probes: &'a [ProbeInfo]) -> ProbeIndex<'a> {
        let mut by_id: Vec<(ProbeId, &ProbeInfo)> = probes.iter().map(|p| (p.id, p)).collect();
        // Stable sort + keep-first dedup preserves forward-search
        // semantics for duplicate ids.
        by_id.sort_by_key(|&(id, _)| id);
        by_id.dedup_by_key(|&mut (id, _)| id);
        ProbeIndex { by_id }
    }

    /// Look up a probe's metadata by id.
    pub fn get(&self, id: ProbeId) -> Option<&'a ProbeInfo> {
        let i = self.by_id.binary_search_by_key(&id, |&(pid, _)| pid).ok()?;
        Some(self.by_id[i].1)
    }
}

/// Figure 6a: probe→PoP RTT boxplots per country, *excluding* the US
/// ("rest of the world"). Sorted by median ascending.
pub fn pop_rtt_by_country(
    traceroutes: &[TracerouteRecord],
    probes: &[ProbeInfo],
) -> Vec<(CountryCode, FiveNumber)> {
    let index = ProbeIndex::new(probes);
    let mut by_country: BTreeMap<CountryCode, Vec<f64>> = BTreeMap::new();
    for t in traceroutes {
        let Some(info) = index.get(t.probe) else {
            continue;
        };
        if info.country == CountryCode::new("US") {
            continue;
        }
        if let Some(rtt) = t.cgnat_rtt() {
            by_country.entry(info.country).or_default().push(rtt.0);
        }
    }
    summarise(by_country)
}

/// Figure 8a: probe→PoP RTT boxplots per US state. Sorted by median
/// ascending.
pub fn pop_rtt_by_state(
    traceroutes: &[TracerouteRecord],
    probes: &[ProbeInfo],
) -> Vec<(&'static str, FiveNumber)> {
    let index = ProbeIndex::new(probes);
    let mut by_state: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for t in traceroutes {
        let Some(info) = index.get(t.probe) else {
            continue;
        };
        let Some(state) = info.state else { continue };
        if let Some(rtt) = t.cgnat_rtt() {
            by_state.entry(state).or_default().push(rtt.0);
        }
    }
    summarise(by_state)
}

/// Per-probe RTT time series (timestamp-ordered), for the longitudinal
/// analyses.
pub fn pop_rtt_series(
    traceroutes: &[TracerouteRecord],
    probe: ProbeId,
) -> Vec<(sno_types::Timestamp, f64)> {
    let mut series: Vec<_> = traceroutes
        .iter()
        .filter(|t| t.probe == probe)
        .filter_map(|t| t.cgnat_rtt().map(|r| (t.timestamp, r.0)))
        .collect();
    series.sort_by_key(|&(ts, _)| ts);
    series
}

/// Every probe's RTT series from a single pass over the corpus — the
/// O(T + P) replacement for calling [`pop_rtt_series`] once per probe
/// (which rescans all T traceroutes for each of the P probes).
pub fn pop_rtt_series_by_probe(
    traceroutes: &[TracerouteRecord],
) -> BTreeMap<ProbeId, Vec<(sno_types::Timestamp, f64)>> {
    let mut by_probe: BTreeMap<ProbeId, Vec<(sno_types::Timestamp, f64)>> = BTreeMap::new();
    for t in traceroutes {
        if let Some(rtt) = t.cgnat_rtt() {
            by_probe
                .entry(t.probe)
                .or_default()
                .push((t.timestamp, rtt.0));
        }
    }
    // Stable sort, as in `pop_rtt_series`, so the two agree exactly.
    for series in by_probe.values_mut() {
        series.sort_by_key(|&(ts, _)| ts);
    }
    by_probe
}

/// [`pop_rtt_series_by_probe`] from a chunked traceroute stream — the
/// bounded-memory entry point: only the per-probe `(timestamp, rtt)`
/// series are resident, never the traceroute records.
///
/// Because each series is bucketed then stably sorted by timestamp,
/// the output is identical for any stream whose per-probe relative
/// order matches the generation order — both the chronologically
/// sorted corpus and the per-probe chunked stream of
/// `AtlasGenerator::traceroute_chunks` qualify.
pub fn pop_rtt_series_from_chunks<C>(
    stream: C,
) -> BTreeMap<ProbeId, Vec<(sno_types::Timestamp, f64)>>
where
    C: RecordChunks<Item = TracerouteRecord>,
{
    let mut by_probe = stream.fold_records(
        BTreeMap::<ProbeId, Vec<(sno_types::Timestamp, f64)>>::new(),
        |mut map, t| {
            if let Some(rtt) = t.cgnat_rtt() {
                map.entry(t.probe).or_default().push((t.timestamp, rtt.0));
            }
            map
        },
    );
    for series in by_probe.values_mut() {
        series.sort_by_key(|&(ts, _)| ts);
    }
    by_probe
}

fn summarise<K: Ord>(map: BTreeMap<K, Vec<f64>>) -> Vec<(K, FiveNumber)> {
    let mut out: Vec<(K, FiveNumber)> = map
        .into_iter()
        .filter_map(|(k, v)| FiveNumber::of(&v).map(|s| (k, s)))
        .collect();
    out.sort_by(|a, b| a.1.median.total_cmp(&b.1.median));
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use sno_synth::{AtlasGenerator, SynthConfig};
    use std::sync::OnceLock;

    pub(crate) fn corpus() -> &'static sno_synth::AtlasCorpus {
        static CORPUS: OnceLock<sno_synth::AtlasCorpus> = OnceLock::new();
        CORPUS.get_or_init(|| AtlasGenerator::new(SynthConfig::test_corpus()).generate())
    }

    pub(crate) fn probe_infos() -> Vec<ProbeInfo> {
        corpus()
            .probes
            .iter()
            .map(|p| ProbeInfo {
                id: p.id,
                country: p.country,
                state: p.state,
            })
            .collect()
    }

    fn median_of_country(code: &str) -> f64 {
        let table = pop_rtt_by_country(&corpus().traceroutes, &probe_infos());
        table
            .iter()
            .find(|(c, _)| *c == CountryCode::new(code))
            .map(|(_, s)| s.median)
            .unwrap_or_else(|| panic!("no {code} row"))
    }

    #[test]
    fn nz_and_cl_are_fastest_rest_of_world() {
        // Figure 6a: New Zealand and Chile ≈ 33 ms (NZ's full-window
        // median is pulled up by its pre-Auckland Sydney days).
        let nz = median_of_country("NZ");
        let cl = median_of_country("CL");
        assert!((28.0..50.0).contains(&nz), "NZ {nz}");
        assert!((28.0..42.0).contains(&cl), "CL {cl}");
        // Europe follows in the roughly-35-to-45 band.
        for c in ["DE", "GB", "ES", "IT", "PL", "AT", "NL", "BE", "FR"] {
            let m = median_of_country(c);
            assert!((28.0..48.0).contains(&m), "{c} {m}");
        }
    }

    #[test]
    fn philippines_is_the_slowest_country() {
        let table = pop_rtt_by_country(&corpus().traceroutes, &probe_infos());
        let slowest = table.last().expect("non-empty").0;
        assert_eq!(slowest, CountryCode::new("PH"));
        let ph = median_of_country("PH");
        assert!((60.0..110.0).contains(&ph), "PH {ph}");
        // Roughly twice the typical European figure.
        assert!(ph > 1.6 * median_of_country("DE"));
    }

    #[test]
    fn us_excluded_from_rest_of_world() {
        let table = pop_rtt_by_country(&corpus().traceroutes, &probe_infos());
        assert!(table.iter().all(|(c, _)| *c != CountryCode::new("US")));
        assert_eq!(table.len(), 14, "all 14 non-US countries present");
    }

    #[test]
    fn alaska_dominates_the_states() {
        let table = pop_rtt_by_state(&corpus().traceroutes, &probe_infos());
        let (slowest, summary) = table.last().expect("non-empty");
        assert_eq!(*slowest, "AK");
        assert!(
            (60.0..110.0).contains(&summary.median),
            "AK {}",
            summary.median
        );
        // Mainland states sit around 40–60 ms.
        for (state, s) in &table[..table.len() - 1] {
            assert!(
                (30.0..62.0).contains(&s.median),
                "{state} median {}",
                s.median
            );
        }
    }

    #[test]
    fn chunked_series_match_materialized() {
        let materialized = pop_rtt_series_by_probe(&corpus().traceroutes);
        for (chunk_len, threads) in [(1usize, 1usize), (769, 2), (usize::MAX, 1)] {
            let mut config = SynthConfig::test_corpus();
            config.threads = threads;
            let gen = AtlasGenerator::new(config);
            let streamed = pop_rtt_series_from_chunks(gen.traceroute_chunks(chunk_len));
            assert_eq!(
                streamed, materialized,
                "chunk {chunk_len} threads {threads}"
            );
        }
    }

    #[test]
    fn probe_index_matches_linear_search() {
        let probes = probe_infos();
        let index = ProbeIndex::new(&probes);
        for p in &probes {
            assert_eq!(index.get(p.id), probes.iter().find(|q| q.id == p.id));
        }
        let absent = ProbeId(u32::MAX);
        assert_eq!(index.get(absent), None);
    }

    #[test]
    fn probe_index_keeps_first_duplicate() {
        let mut probes = probe_infos();
        let mut dup = probes[0];
        dup.state = Some("ZZ");
        probes.push(dup);
        let index = ProbeIndex::new(&probes);
        assert_eq!(index.get(probes[0].id), Some(&probes[0]));
    }

    #[test]
    fn series_is_time_ordered() {
        let probes = probe_infos();
        let first = probes.first().unwrap().id;
        let series = pop_rtt_series(&corpus().traceroutes, first);
        assert!(series.len() > 10);
        for w in series.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }
}
