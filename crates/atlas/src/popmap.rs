//! PoP geolocation from SSLCert source addresses and reverse DNS.
//!
//! Every 12 hours a probe's SSLCert measurement exposes its public
//! source address; reverse DNS of that address encodes the serving PoP
//! (`customer.<code>.pop.starlinkisp.net`). Tracking these over time
//! yields each probe's PoP link history — the green (active) and red
//! (inactive) lines of Figure 7.

use sno_geo::pops::{pop_from_reverse_dns, PopSite};
use sno_types::records::SslCertRecord;
use sno_types::{ProbeId, Timestamp};

/// One probe→PoP association interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopLink {
    /// The serving PoP.
    pub pop: &'static PopSite,
    /// First observation of this association.
    pub first_seen: Timestamp,
    /// Last observation.
    pub last_seen: Timestamp,
    /// Whether this is the probe's current (most recent) association.
    pub active: bool,
}

/// Reconstruct one probe's PoP history from SSLCert observations.
///
/// `resolve` maps a public address to its reverse-DNS name (in
/// production a PTR lookup; in the synthetic corpus
/// `sno_synth::atlas::reverse_dns`). Consecutive observations of the
/// same PoP are merged; the last interval is marked active.
pub fn pop_history(
    sslcerts: &[SslCertRecord],
    probe: ProbeId,
    resolve: impl Fn(sno_types::Ipv4) -> Option<String>,
) -> Vec<PopLink> {
    let mut obs: Vec<&SslCertRecord> = sslcerts.iter().filter(|s| s.probe == probe).collect();
    obs.sort_by_key(|s| s.timestamp);

    let mut history: Vec<PopLink> = Vec::new();
    for s in obs {
        let Some(name) = resolve(s.src_addr) else {
            continue;
        };
        let Some(pop) = pop_from_reverse_dns(&name) else {
            continue;
        };
        match history.last_mut() {
            Some(last) if last.pop.code == pop.code => last.last_seen = s.timestamp,
            _ => history.push(PopLink {
                pop,
                first_seen: s.timestamp,
                last_seen: s.timestamp,
                active: false,
            }),
        }
    }
    if let Some(last) = history.last_mut() {
        last.active = true;
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pop_rtt::tests::corpus;
    use sno_types::records::CountryCode;

    fn history_of(country: &str, idx: usize) -> (ProbeId, Vec<PopLink>) {
        let c = corpus();
        let probe = c
            .probes
            .iter()
            .filter(|p| p.country == CountryCode::new(country))
            .nth(idx)
            .expect("probe exists");
        let h = pop_history(&c.sslcerts, probe.id, sno_synth::atlas::reverse_dns);
        (probe.id, h)
    }

    #[test]
    fn nz_history_shows_sydney_then_auckland() {
        let (_, h) = history_of("NZ", 0);
        assert_eq!(h.len(), 2, "{h:?}");
        assert_eq!(h[0].pop.code, "sydnaus1");
        assert!(!h[0].active, "old link must be inactive");
        assert_eq!(h[1].pop.code, "aklnnzl1");
        assert!(h[1].active);
        assert!(h[0].last_seen < h[1].first_seen);
        // The switch happened around 2022-07-12.
        let switch = h[1].first_seen.date();
        assert_eq!((switch.year, switch.month), (2022, 7));
    }

    #[test]
    fn nl_first_probe_moved_frankfurt_to_london() {
        let (_, h) = history_of("NL", 0);
        let codes: Vec<_> = h.iter().map(|l| l.pop.code).collect();
        assert_eq!(codes, vec!["frntdeu1", "lndngbr1"]);
    }

    #[test]
    fn nevada_probe_has_three_intervals() {
        let c = corpus();
        let nv = c.probes.iter().find(|p| p.state == Some("NV")).unwrap();
        let h = pop_history(&c.sslcerts, nv.id, sno_synth::atlas::reverse_dns);
        let codes: Vec<_> = h.iter().map(|l| l.pop.code).collect();
        assert_eq!(codes, vec!["lsancax1", "dnvrcox1", "lsancax1"]);
        assert!(h[2].active && !h[0].active && !h[1].active);
    }

    #[test]
    fn stable_probes_have_one_active_link() {
        let (_, h) = history_of("DE", 0);
        assert_eq!(h.len(), 1);
        assert!(h[0].active);
        assert_eq!(h[0].pop.code, "frntdeu1");
    }

    #[test]
    fn unresolvable_addresses_are_skipped() {
        let c = corpus();
        let probe = c.probes[0].id;
        let h = pop_history(&c.sslcerts, probe, |_| None);
        assert!(h.is_empty());
    }
}
