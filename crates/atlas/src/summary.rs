//! The Table 2 dataset summary.

use crate::pop_rtt::{ProbeIndex, ProbeInfo};
use sno_types::records::{CountryCode, TracerouteRecord};
use sno_types::Timestamp;
use std::collections::BTreeMap;

/// One Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountrySummary {
    pub country: CountryCode,
    /// Probes deployed.
    pub probes: usize,
    /// Earliest measurement observed.
    pub first_measurement: Timestamp,
    /// Traceroute measurements collected.
    pub traceroutes: u64,
}

/// Summarise the dataset per country (Table 2), sorted by country code.
pub fn country_summary(
    traceroutes: &[TracerouteRecord],
    probes: &[ProbeInfo],
) -> Vec<CountrySummary> {
    let index = ProbeIndex::new(probes);
    let mut acc: BTreeMap<CountryCode, (std::collections::BTreeSet<u32>, Timestamp, u64)> =
        BTreeMap::new();
    for t in traceroutes {
        let Some(info) = index.get(t.probe) else {
            continue;
        };
        let entry = acc
            .entry(info.country)
            .or_insert_with(|| (std::collections::BTreeSet::new(), t.timestamp, 0));
        entry.0.insert(t.probe.0);
        entry.1 = entry.1.min(t.timestamp);
        entry.2 += 1;
    }
    acc.into_iter()
        .map(|(country, (ids, first, n))| CountrySummary {
            country,
            probes: ids.len(),
            first_measurement: first,
            traceroutes: n,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pop_rtt::tests::{corpus, probe_infos};

    #[test]
    fn fifteen_countries_sixty_seven_probes() {
        let rows = country_summary(&corpus().traceroutes, &probe_infos());
        assert_eq!(rows.len(), 15);
        let total: usize = rows.iter().map(|r| r.probes).sum();
        assert_eq!(total, 67);
    }

    #[test]
    fn us_has_most_probes_and_traceroutes() {
        let rows = country_summary(&corpus().traceroutes, &probe_infos());
        let us = rows
            .iter()
            .find(|r| r.country == CountryCode::new("US"))
            .unwrap();
        assert_eq!(us.probes, 33);
        for r in &rows {
            if r.country != CountryCode::new("US") {
                assert!(us.traceroutes > r.traceroutes, "{}", r.country);
            }
        }
    }

    #[test]
    fn start_dates_follow_table2() {
        let rows = country_summary(&corpus().traceroutes, &probe_infos());
        let first_of = |code: &str| {
            rows.iter()
                .find(|r| r.country == CountryCode::new(code))
                .unwrap()
                .first_measurement
                .date()
        };
        // May-2022 cohort vs late joiners.
        assert_eq!(first_of("US").year, 2022);
        assert_eq!(first_of("US").month, 5);
        assert_eq!(first_of("PH").year, 2023);
        assert_eq!(first_of("PH").month, 3);
        assert_eq!(first_of("FR").month, 11);
    }
}
