//! Property-based tests for the orbital geometry.

use sno_check::prelude::*;
use sno_geo::GeoPoint;
use sno_orbit::access::{BentPipe, GeoAccess, MeoAccess, HANDOFF_PERIOD_SECS};
use sno_orbit::geostationary::{GeoSlot, GEO_ALTITUDE_KM};
use sno_orbit::meo::O3B_RING;
use sno_orbit::shell::{ONEWEB_SHELL, STARLINK_SHELL};
use sno_orbit::vec3::{ecef_of, elevation_deg, EARTH_RADIUS_KM};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every satellite of every modelled system stays on its sphere at
    /// all times.
    #[test]
    fn satellites_stay_on_their_spheres(
        t in 0.0..1e6f64,
        plane in 0u32..72,
        idx in 0u32..22,
        meo_idx in 0u32..20,
    ) {
        let s = STARLINK_SHELL.sat_position(plane, idx, t);
        prop_assert!((s.norm() - (EARTH_RADIUS_KM + 550.0)).abs() < 1e-6);
        let o = ONEWEB_SHELL.sat_position(plane % 18, idx % 36, t);
        prop_assert!((o.norm() - (EARTH_RADIUS_KM + 1_200.0)).abs() < 1e-6);
        let m = O3B_RING.sat_position(meo_idx, t);
        prop_assert!((m.norm() - (EARTH_RADIUS_KM + 8_062.0)).abs() < 1e-6);
    }

    /// Elevation is bounded and reaches 90° only straight up.
    #[test]
    fn elevation_bounds(
        lat in -89.0..89.0f64,
        lon in -179.0..179.0f64,
        slat in -89.0..89.0f64,
        slon in -179.0..179.0f64,
        alt in 200.0..40_000.0f64,
    ) {
        let obs = ecef_of(GeoPoint::new(lat, lon));
        let sat = ecef_of(GeoPoint::new(slat, slon)).scale((EARTH_RADIUS_KM + alt) / EARTH_RADIUS_KM);
        let el = elevation_deg(obs, sat);
        prop_assert!((-90.0..=90.0).contains(&el));
    }

    /// Bent-pipe propagation RTT is bounded by physics: at least the
    /// vertical double-bounce, at most four horizon slants.
    #[test]
    fn leo_rtt_physical_bounds(
        lat in -55.0..55.0f64,
        lon in -180.0..180.0f64,
        t in 0.0..50_000.0f64,
    ) {
        let user = GeoPoint::new(lat, lon);
        let gw = GeoPoint::new((lat + 2.0).clamp(-60.0, 60.0), lon);
        let pipe = BentPipe::new(STARLINK_SHELL, user, gw);
        if let Some(rtt) = pipe.propagation_rtt(t) {
            let min_ms = 2.0 * 2.0 * 550.0 / 299_792.458 * 1_000.0; // up+down, vertical
            let horizon =
                ((EARTH_RADIUS_KM + 550.0f64).powi(2) - EARTH_RADIUS_KM.powi(2)).sqrt();
            let max_ms = 2.0 * 2.0 * horizon / 299_792.458 * 1_000.0;
            prop_assert!(rtt.0 >= min_ms - 1e-9, "{rtt}");
            prop_assert!(rtt.0 <= max_ms + 1e-9, "{rtt}");
        }
    }

    /// LEO RTT is constant within a handoff epoch.
    #[test]
    fn leo_rtt_epoch_constant(
        lat in -50.0..50.0f64,
        t in 0.0..10_000.0f64,
        frac in 0.01..0.99f64,
    ) {
        let user = GeoPoint::new(lat, 10.0);
        let gw = GeoPoint::new(lat + 1.0, 11.0);
        let pipe = BentPipe::new(STARLINK_SHELL, user, gw);
        let epoch_start = (t / HANDOFF_PERIOD_SECS).floor() * HANDOFF_PERIOD_SECS;
        let a = pipe.propagation_rtt(epoch_start + 0.001);
        let b = pipe.propagation_rtt(epoch_start + frac * HANDOFF_PERIOD_SECS);
        prop_assert_eq!(a.map(|m| m.0), b.map(|m| m.0));
    }

    /// GEO propagation RTT sits between the vertical bounce (~477 ms)
    /// and the grazing-path maximum (~560 ms) whenever defined.
    #[test]
    fn geo_rtt_physical_bounds(
        lat in -70.0..70.0f64,
        lon in -70.0..70.0f64,
        slot_lon in -30.0..30.0f64,
        glat in -45.0..45.0f64,
    ) {
        let access = GeoAccess::new(
            GeoSlot { lon_deg: slot_lon },
            GeoPoint::new(lat, lon),
            GeoPoint::new(glat, slot_lon),
        );
        if let Some(rtt) = access.propagation_rtt() {
            let min_ms = 2.0 * 2.0 * GEO_ALTITUDE_KM / 299_792.458 * 1_000.0;
            prop_assert!(rtt.0 >= min_ms - 1e-9, "{rtt}");
            prop_assert!(rtt.0 <= 600.0, "{rtt}");
        }
    }

    /// MEO coverage is an equatorial belt: inside ±45° there is always a
    /// satellite; beyond ±62° never.
    #[test]
    fn meo_coverage_belt(lon in -180.0..180.0f64, t in 0.0..100_000.0f64) {
        let inside = MeoAccess::new(
            O3B_RING,
            GeoPoint::new(20.0, lon),
            GeoPoint::new(18.0, lon),
        );
        prop_assert!(inside.propagation_rtt(t).is_some());
        let outside = MeoAccess::new(
            O3B_RING,
            GeoPoint::new(70.0, lon),
            GeoPoint::new(0.0, lon),
        );
        prop_assert!(outside.propagation_rtt(t).is_none());
    }
}
