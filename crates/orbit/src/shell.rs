//! Walker-delta constellation shells.
//!
//! A shell is a set of circular orbits at one altitude and inclination:
//! `planes` orbital planes with evenly spaced ascending nodes, each
//! carrying `sats_per_plane` satellites evenly spaced in mean anomaly,
//! with a per-plane phase offset (the Walker phasing parameter). Both
//! LEO constellations in the paper are modelled this way.

use crate::vec3::{Vec3, EARTH_ROTATION_RAD_S, MU_EARTH};
use sno_types::Kilometers;
use std::f64::consts::TAU;

/// A Walker-delta shell of circular orbits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shell {
    /// Orbit altitude above the surface, km.
    pub altitude_km: f64,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Number of orbital planes.
    pub planes: u32,
    /// Satellites per plane.
    pub sats_per_plane: u32,
    /// Walker phasing parameter `F`: satellites in adjacent planes are
    /// offset by `F / (planes · sats_per_plane)` of a full revolution.
    pub phasing: u32,
}

/// Starlink's first (and closest) orbital shell: 550 km, 53°, 72 planes
/// of 22 satellites.
pub const STARLINK_SHELL: Shell = Shell {
    altitude_km: 550.0,
    inclination_deg: 53.0,
    planes: 72,
    sats_per_plane: 22,
    phasing: 39,
};

/// OneWeb's polar shell: 1 200 km, 87.4°, 18 planes of 36 satellites.
pub const ONEWEB_SHELL: Shell = Shell {
    altitude_km: 1_200.0,
    inclination_deg: 87.4,
    planes: 18,
    sats_per_plane: 36,
    phasing: 1,
};

/// A visible satellite: where it is relative to an observer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Visibility {
    /// Orbital plane index.
    pub plane: u32,
    /// Satellite index within the plane.
    pub index: u32,
    /// Line-of-sight distance observer → satellite.
    pub slant: Kilometers,
    /// Elevation above the observer's horizon, degrees.
    pub elevation_deg: f64,
}

impl Shell {
    /// Total satellites in the shell.
    pub fn num_sats(&self) -> u32 {
        self.planes * self.sats_per_plane
    }

    /// Orbital radius (from Earth's centre), km.
    pub fn orbit_radius_km(&self) -> f64 {
        crate::vec3::EARTH_RADIUS_KM + self.altitude_km
    }

    /// Orbital period from Kepler's third law, seconds.
    pub fn period_secs(&self) -> f64 {
        let a = self.orbit_radius_km();
        TAU * (a.powi(3) / MU_EARTH).sqrt()
    }

    /// ECEF position of satellite (`plane`, `index`) at `t_secs` after
    /// the epoch.
    ///
    /// The orbit is circular: the satellite's in-plane angle (argument of
    /// latitude) advances at the mean motion; the plane's ascending node
    /// regresses in ECEF at the Earth rotation rate (nodal precession is
    /// negligible over the study window for our purposes).
    ///
    /// # Panics
    /// Panics in debug builds when the indices are out of range.
    pub fn sat_position(&self, plane: u32, index: u32, t_secs: f64) -> Vec3 {
        debug_assert!(plane < self.planes, "plane out of range");
        debug_assert!(index < self.sats_per_plane, "index out of range");
        let a = self.orbit_radius_km();
        let inc = self.inclination_deg.to_radians();
        let mean_motion = TAU / self.period_secs();
        // Ascending node in ECEF (inertial node minus Earth rotation).
        let raan = TAU * f64::from(plane) / f64::from(self.planes) - EARTH_ROTATION_RAD_S * t_secs;
        // Argument of latitude: initial spacing + Walker phasing + motion.
        let u = TAU * f64::from(index) / f64::from(self.sats_per_plane)
            + TAU * f64::from(self.phasing) * f64::from(plane) / f64::from(self.num_sats())
            + mean_motion * t_secs;
        let (sin_u, cos_u) = u.sin_cos();
        let (sin_raan, cos_raan) = raan.sin_cos();
        let (sin_i, cos_i) = inc.sin_cos();
        Vec3::new(
            a * (cos_raan * cos_u - sin_raan * sin_u * cos_i),
            a * (sin_raan * cos_u + cos_raan * sin_u * cos_i),
            a * (sin_u * sin_i),
        )
    }

    /// The visible satellite with the highest elevation above
    /// `min_elevation_deg`, as seen from `observer` (an ECEF surface
    /// point) at `t_secs`. `None` when no satellite clears the mask.
    ///
    /// Exact pruned search, not a full scan. On the spherical Earth,
    /// elevation is strictly monotone in the central angle ψ between
    /// observer and satellite, so a satellite clears the mask iff
    /// ψ ≤ ψmax = acos((r/a)·cos(mask)) − mask. Each plane's satellites
    /// lie on a great circle of the orbit sphere whose nearest approach
    /// to the observer direction is asin(|ô·n̂|); planes further away
    /// than ψmax are skipped without touching their satellites. Within
    /// a surviving plane the dot product ô·pos(u) is sinusoidal in the
    /// argument of latitude, so the plane's best satellite is the
    /// sample nearest its peak — only that sample and its neighbours
    /// are evaluated. For Starlink's 72×22 shell this visits a handful
    /// of planes instead of 1,584 satellites.
    pub fn best_visible(
        &self,
        observer: Vec3,
        t_secs: f64,
        min_elevation_deg: f64,
    ) -> Option<Visibility> {
        let a = self.orbit_radius_km();
        let o = observer.unit();
        let mask = min_elevation_deg.to_radians();
        let cos_arg = ((observer.norm() / a) * mask.cos()).min(1.0);
        let psi_max = cos_arg.acos() - mask;
        if psi_max <= 0.0 {
            return None;
        }
        // Slack so float rounding in the plane-distance test can never
        // drop a plane whose best satellite sits exactly at the mask.
        let sin_psi_max = (psi_max + 1e-9).sin();
        let mean_motion = TAU / self.period_secs();
        let (sin_i, cos_i) = self.inclination_deg.to_radians().sin_cos();
        let s = f64::from(self.sats_per_plane);
        let mut best: Option<Visibility> = None;
        for plane in 0..self.planes {
            let raan =
                TAU * f64::from(plane) / f64::from(self.planes) - EARTH_ROTATION_RAD_S * t_secs;
            let (sin_raan, cos_raan) = raan.sin_cos();
            // Unit normal of the orbit plane in ECEF.
            let n_dot = o.x * sin_raan * sin_i - o.y * cos_raan * sin_i + o.z * cos_i;
            if n_dot.abs() > sin_psi_max {
                continue;
            }
            // pos(u) = a·(p1·cos u + p2·sin u): ô·pos peaks at
            // u* = atan2(ô·p2, ô·p1), and elevation peaks with it.
            let p1 = Vec3::new(cos_raan, sin_raan, 0.0);
            let p2 = Vec3::new(-sin_raan * cos_i, cos_raan * cos_i, sin_i);
            let u_star = o.dot(p2).atan2(o.dot(p1));
            let u0 = TAU * f64::from(self.phasing) * f64::from(plane) / f64::from(self.num_sats())
                + mean_motion * t_secs;
            let nearest = ((u_star - u0) / TAU * s).round();
            // The rounded peak plus both neighbours guards against u*
            // landing a rounding error away from the true argmax.
            for k in [-1.0, 0.0, 1.0] {
                let index =
                    ((nearest + k) as i64).rem_euclid(i64::from(self.sats_per_plane)) as u32;
                let sat = self.sat_position(plane, index, t_secs);
                let el = crate::vec3::elevation_deg(observer, sat);
                if el < min_elevation_deg {
                    continue;
                }
                if best.as_ref().is_none_or(|b| el > b.elevation_deg) {
                    best = Some(Visibility {
                        plane,
                        index,
                        slant: observer.distance_to(sat),
                        elevation_deg: el,
                    });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::{ecef_of, EARTH_RADIUS_KM};
    use sno_geo::GeoPoint;

    #[test]
    fn starlink_period_about_95_minutes() {
        let p = STARLINK_SHELL.period_secs() / 60.0;
        assert!((p - 95.6).abs() < 1.0, "period {p} min");
    }

    #[test]
    fn oneweb_period_about_109_minutes() {
        let p = ONEWEB_SHELL.period_secs() / 60.0;
        assert!((p - 109.0).abs() < 2.0, "period {p} min");
    }

    #[test]
    fn satellites_stay_on_their_sphere() {
        let shell = STARLINK_SHELL;
        let r = shell.orbit_radius_km();
        for t in [0.0, 300.0, 4_000.0, 86_400.0] {
            let pos = shell.sat_position(7, 3, t);
            assert!((pos.norm() - r).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn constellation_sizes() {
        assert_eq!(STARLINK_SHELL.num_sats(), 1_584);
        assert_eq!(ONEWEB_SHELL.num_sats(), 648);
    }

    #[test]
    fn mid_latitude_user_always_sees_starlink() {
        // At 53° inclination the shell is densest at mid latitudes; a
        // Seattle user should see a satellite above 25° at any time.
        let obs = ecef_of(GeoPoint::new(47.6, -122.3));
        for t in (0..12).map(|k| k as f64 * 450.0) {
            let vis = STARLINK_SHELL.best_visible(obs, t, 25.0);
            assert!(vis.is_some(), "no satellite at t={t}");
            let v = vis.unwrap();
            // Slant is bounded below by the altitude and above by the
            // horizon distance.
            assert!(v.slant.0 >= 550.0 - 1.0, "slant {}", v.slant);
            assert!(v.slant.0 < 1_500.0, "slant {}", v.slant);
        }
    }

    #[test]
    fn starlink_shell_does_not_cover_high_latitudes() {
        // 53°-inclined shell leaves the far north uncovered (Alaska's
        // far-north users rely on later shells; our Anchorage probe at
        // 61°N is near the edge but the pole is definitely dark).
        let obs = ecef_of(GeoPoint::new(82.0, 0.0));
        let vis = STARLINK_SHELL.best_visible(obs, 0.0, 25.0);
        assert!(vis.is_none());
    }

    #[test]
    fn oneweb_polar_shell_covers_high_latitudes() {
        let obs = ecef_of(GeoPoint::new(78.0, 15.0));
        let vis = ONEWEB_SHELL.best_visible(obs, 0.0, 20.0);
        assert!(vis.is_some());
    }

    #[test]
    fn selection_changes_over_time() {
        // LEO satellites sweep overhead in minutes; the chosen satellite
        // must differ across a quarter orbit.
        let obs = ecef_of(GeoPoint::new(40.0, -100.0));
        let a = STARLINK_SHELL.best_visible(obs, 0.0, 25.0).unwrap();
        let b = STARLINK_SHELL
            .best_visible(obs, STARLINK_SHELL.period_secs() / 4.0, 25.0)
            .unwrap();
        assert!(a.plane != b.plane || a.index != b.index);
    }

    #[test]
    fn elevation_mask_respected() {
        let obs = ecef_of(GeoPoint::new(47.6, -122.3));
        for t in [0.0, 777.0, 5_000.0] {
            if let Some(v) = STARLINK_SHELL.best_visible(obs, t, 40.0) {
                assert!(v.elevation_deg >= 40.0);
            }
        }
    }

    /// The pre-pruning full scan, kept as the reference the pruned
    /// search must match exactly.
    fn best_visible_scan(
        shell: &Shell,
        observer: Vec3,
        t_secs: f64,
        min_elevation_deg: f64,
    ) -> Option<Visibility> {
        let mut best: Option<Visibility> = None;
        for plane in 0..shell.planes {
            for index in 0..shell.sats_per_plane {
                let sat = shell.sat_position(plane, index, t_secs);
                let el = crate::vec3::elevation_deg(observer, sat);
                if el < min_elevation_deg {
                    continue;
                }
                if best.as_ref().is_none_or(|b| el > b.elevation_deg) {
                    best = Some(Visibility {
                        plane,
                        index,
                        slant: observer.distance_to(sat),
                        elevation_deg: el,
                    });
                }
            }
        }
        best
    }

    #[test]
    fn pruned_search_matches_full_scan() {
        for shell in [STARLINK_SHELL, ONEWEB_SHELL] {
            for lat in [-78.0, -53.0, -40.0, 0.0, 33.9, 47.6, 53.0, 61.2, 82.0] {
                for lon in [-122.3, 0.0, 15.0, 174.8] {
                    let obs = ecef_of(GeoPoint::new(lat, lon));
                    for t in [0.0, 777.0, 5_000.0, 86_400.0, 9_999_999.0] {
                        for mask in [10.0, 25.0, 40.0] {
                            let fast = shell.best_visible(obs, t, mask);
                            let slow = best_visible_scan(&shell, obs, t, mask);
                            assert_eq!(
                                fast, slow,
                                "shell {}km lat {lat} lon {lon} t {t} mask {mask}",
                                shell.altitude_km
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn slant_lower_bound_is_altitude() {
        // Geometry sanity: slant >= altitude for any satellite above the
        // observer's horizon.
        let obs = ecef_of(GeoPoint::new(0.0, 0.0));
        let v = ONEWEB_SHELL.best_visible(obs, 123.0, 10.0).unwrap();
        assert!(v.slant.0 >= ONEWEB_SHELL.altitude_km - 1.0);
        let horizon = ((ONEWEB_SHELL.orbit_radius_km()).powi(2) - EARTH_RADIUS_KM.powi(2)).sqrt();
        assert!(v.slant.0 <= horizon);
    }
}
