//! The subscriber access link: satellite selection + bent-pipe delay.
//!
//! A subscriber terminal talks to the internet through a *bent pipe*:
//! user → satellite → gateway (ground station), with the gateway wired to
//! the operator's PoP. Propagation delay is pure geometry; this module
//! computes it per orbit regime and exposes the *satellite generation*
//! counter that drives handoff effects:
//!
//! * **LEO** re-plans its beam assignments on a fixed 15-second cadence
//!   (the well-documented Starlink reconfiguration interval), so the
//!   serving satellite — and hence the path length — jumps every epoch.
//! * **MEO** satellites drift slowly; the serving satellite changes only
//!   every tens of minutes, but the ring is sparse so a handoff is a
//!   bigger event.
//! * **GEO** never hands off.

use crate::geostationary::GeoSlot;
use crate::meo::MeoRing;
use crate::shell::Shell;
use crate::vec3::{ecef_of, Vec3};
use sno_geo::GeoPoint;
use sno_types::{Kilometers, Millis};

/// LEO beam re-planning cadence, seconds.
pub const HANDOFF_PERIOD_SECS: f64 = 15.0;

/// Default user-terminal elevation mask, degrees (Starlink dishes refuse
/// satellites below 25°).
pub const USER_ELEVATION_MASK_DEG: f64 = 25.0;

/// A LEO bent-pipe access link.
#[derive(Debug, Clone)]
pub struct BentPipe {
    /// The serving shell.
    pub shell: Shell,
    /// Subscriber terminal position.
    pub user: Vec3,
    /// Serving gateway position (near the PoP).
    pub gateway: Vec3,
    /// Elevation mask applied at the user terminal, degrees.
    pub min_elevation_deg: f64,
}

impl BentPipe {
    /// Build for a user and gateway given as geographic points.
    pub fn new(shell: Shell, user: GeoPoint, gateway: GeoPoint) -> BentPipe {
        BentPipe {
            shell,
            user: ecef_of(user),
            gateway: ecef_of(gateway),
            min_elevation_deg: USER_ELEVATION_MASK_DEG,
        }
    }

    /// The handoff epoch `t_secs` falls in.
    pub fn generation(&self, t_secs: f64) -> u64 {
        (t_secs / HANDOFF_PERIOD_SECS).floor() as u64
    }

    /// Bent-pipe propagation RTT at `t_secs`, or `None` during an outage
    /// (no satellite above the mask).
    ///
    /// Selection is frozen at the epoch start, so the value is constant
    /// within an epoch and jumps at epoch boundaries — exactly the
    /// sawtooth that shows up as LEO jitter.
    pub fn propagation_rtt(&self, t_secs: f64) -> Option<Millis> {
        let epoch_start = self.generation(t_secs) as f64 * HANDOFF_PERIOD_SECS;
        let vis = self
            .shell
            .best_visible(self.user, epoch_start, self.min_elevation_deg)?;
        let sat = self.shell.sat_position(vis.plane, vis.index, epoch_start);
        let up = vis.slant;
        let down = sat.distance_to(self.gateway);
        Some(Millis::light_over(Kilometers(2.0 * (up.0 + down.0))))
    }
}

/// A MEO (O3b-style) access link.
#[derive(Debug, Clone)]
pub struct MeoAccess {
    /// The serving ring.
    pub ring: MeoRing,
    /// Subscriber terminal position.
    pub user: Vec3,
    /// Serving gateway position.
    pub gateway: Vec3,
    /// Elevation mask, degrees.
    pub min_elevation_deg: f64,
}

impl MeoAccess {
    /// Build for geographic points, with O3b's ~10° mask.
    pub fn new(ring: MeoRing, user: GeoPoint, gateway: GeoPoint) -> MeoAccess {
        MeoAccess {
            ring,
            user: ecef_of(user),
            gateway: ecef_of(gateway),
            min_elevation_deg: 10.0,
        }
    }

    /// Which satellite serves the user at `t_secs` (the MEO analogue of a
    /// handoff generation), or `None` outside coverage.
    pub fn generation(&self, t_secs: f64) -> Option<u64> {
        self.ring
            .best_visible(self.user, t_secs, self.min_elevation_deg)
            .map(|(i, _, _)| u64::from(i))
    }

    /// Bent-pipe propagation RTT at `t_secs`.
    pub fn propagation_rtt(&self, t_secs: f64) -> Option<Millis> {
        let (index, up, _) = self
            .ring
            .best_visible(self.user, t_secs, self.min_elevation_deg)?;
        let sat = self.ring.sat_position(index, t_secs);
        let down = sat.distance_to(self.gateway);
        Some(Millis::light_over(Kilometers(2.0 * (up.0 + down.0))))
    }
}

/// A GEO access link.
#[derive(Debug, Clone)]
pub struct GeoAccess {
    /// The serving slot.
    pub slot: GeoSlot,
    /// Subscriber terminal position.
    pub user: Vec3,
    /// Teleport (gateway) position.
    pub gateway: Vec3,
    /// Elevation mask, degrees.
    pub min_elevation_deg: f64,
}

impl GeoAccess {
    /// Build for geographic points with a 5° mask.
    pub fn new(slot: GeoSlot, user: GeoPoint, gateway: GeoPoint) -> GeoAccess {
        GeoAccess {
            slot,
            user: ecef_of(user),
            gateway: ecef_of(gateway),
            min_elevation_deg: 5.0,
        }
    }

    /// Bent-pipe propagation RTT (time-invariant), or `None` when the
    /// slot is below the mask for the user or the gateway.
    pub fn propagation_rtt(&self) -> Option<Millis> {
        let (up, _) = self.slot.visible_from(self.user, self.min_elevation_deg)?;
        let (down, _) = self
            .slot
            .visible_from(self.gateway, self.min_elevation_deg)?;
        Some(Millis::light_over(Kilometers(2.0 * (up.0 + down.0))))
    }
}

/// A unified access link across the three regimes.
#[derive(Debug, Clone)]
pub enum SatelliteAccess {
    Leo(BentPipe),
    Meo(MeoAccess),
    Geo(GeoAccess),
}

impl SatelliteAccess {
    /// Bent-pipe propagation RTT at `t_secs`, `None` during outage.
    pub fn propagation_rtt(&self, t_secs: f64) -> Option<Millis> {
        match self {
            SatelliteAccess::Leo(l) => l.propagation_rtt(t_secs),
            SatelliteAccess::Meo(m) => m.propagation_rtt(t_secs),
            SatelliteAccess::Geo(g) => g.propagation_rtt(),
        }
    }

    /// Serving-satellite generation at `t_secs`: changes exactly when a
    /// handoff happens. GEO reports a constant.
    pub fn generation(&self, t_secs: f64) -> Option<u64> {
        match self {
            SatelliteAccess::Leo(l) => Some(l.generation(t_secs)),
            SatelliteAccess::Meo(m) => m.generation(t_secs),
            SatelliteAccess::Geo(_) => Some(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geostationary::GeoSlot;
    use crate::meo::O3B_RING;
    use crate::shell::STARLINK_SHELL;

    fn seattle_pipe() -> BentPipe {
        BentPipe::new(
            STARLINK_SHELL,
            GeoPoint::new(47.2, -121.8),
            GeoPoint::new(47.61, -122.33), // Seattle gateway
        )
    }

    #[test]
    fn leo_propagation_is_single_digit_milliseconds() {
        let pipe = seattle_pipe();
        let mut seen = 0;
        for t in (0..40).map(|k| k as f64 * 60.0) {
            if let Some(rtt) = pipe.propagation_rtt(t) {
                assert!((7.0..25.0).contains(&rtt.0), "rtt {rtt}");
                seen += 1;
            }
        }
        assert!(seen >= 35, "too many outages: {seen}/40");
    }

    #[test]
    fn leo_rtt_constant_within_epoch_jumps_between() {
        let pipe = seattle_pipe();
        let a = pipe.propagation_rtt(0.0).unwrap();
        let b = pipe.propagation_rtt(14.9).unwrap();
        assert_eq!(a, b, "same epoch must give same RTT");
        // Across many epochs the RTT must take several distinct values.
        let mut values = std::collections::BTreeSet::new();
        for epoch in 0..40 {
            if let Some(r) = pipe.propagation_rtt(epoch as f64 * 15.0) {
                values.insert((r.0 * 1000.0) as i64);
            }
        }
        assert!(values.len() > 5, "only {} distinct RTTs", values.len());
    }

    #[test]
    fn generation_counter_matches_cadence() {
        let pipe = seattle_pipe();
        assert_eq!(pipe.generation(0.0), 0);
        assert_eq!(pipe.generation(14.99), 0);
        assert_eq!(pipe.generation(15.0), 1);
        assert_eq!(pipe.generation(61.0), 4);
    }

    #[test]
    fn meo_propagation_about_110_to_150_ms() {
        let access = MeoAccess::new(
            O3B_RING,
            GeoPoint::new(-5.0, 120.0),
            GeoPoint::new(-6.0, 118.0),
        );
        let rtt = access.propagation_rtt(0.0).unwrap();
        assert!((105.0..165.0).contains(&rtt.0), "rtt {rtt}");
    }

    #[test]
    fn geo_propagation_about_480_to_520_ms() {
        let access = GeoAccess::new(
            GeoSlot { lon_deg: -101.0 },
            GeoPoint::new(40.0, -95.0),
            GeoPoint::new(39.0, -77.0),
        );
        let rtt = access.propagation_rtt().unwrap();
        assert!((470.0..530.0).contains(&rtt.0), "rtt {rtt}");
    }

    #[test]
    fn geo_never_hands_off() {
        let access = SatelliteAccess::Geo(GeoAccess::new(
            GeoSlot { lon_deg: -101.0 },
            GeoPoint::new(40.0, -95.0),
            GeoPoint::new(39.0, -77.0),
        ));
        assert_eq!(access.generation(0.0), access.generation(86_400.0));
    }

    #[test]
    fn meo_handoffs_much_rarer_than_leo() {
        let leo = SatelliteAccess::Leo(seattle_pipe());
        let meo = SatelliteAccess::Meo(MeoAccess::new(
            O3B_RING,
            GeoPoint::new(0.0, 100.0),
            GeoPoint::new(1.0, 101.0),
        ));
        let count_changes = |acc: &SatelliteAccess| {
            let mut changes = 0;
            let mut last = acc.generation(0.0);
            for t in (1..240).map(|k| k as f64 * 15.0) {
                let g = acc.generation(t);
                if g != last {
                    changes += 1;
                    last = g;
                }
            }
            changes
        };
        let leo_changes = count_changes(&leo);
        let meo_changes = count_changes(&meo);
        assert!(leo_changes > 100, "LEO changes {leo_changes}");
        assert!(meo_changes < 5, "MEO changes {meo_changes}");
    }

    #[test]
    fn out_of_coverage_user_has_no_rtt() {
        let access = MeoAccess::new(O3B_RING, GeoPoint::new(70.0, 0.0), GeoPoint::new(0.0, 0.0));
        assert!(access.propagation_rtt(0.0).is_none());
        assert!(access.generation(0.0).is_none());
    }
}
