//! Orbital geometry: the physical substrate under every latency number
//! in the study.
//!
//! The paper's three orbit regimes are modelled mechanistically:
//!
//! * [`shell`] — circular Walker-delta constellations (Starlink's 550 km
//!   / 53° shell, OneWeb's 1200 km / 87.4° shell) propagated in ECEF;
//! * [`meo`] — the O3b equatorial ring at 8 062 km;
//! * [`geostationary`] — GEO slots on the Clarke belt;
//! * [`vec3`] — the small vector algebra everything shares;
//! * [`access`] — the user-side access link: nearest-visible-satellite
//!   selection under an elevation mask, bent-pipe (user → satellite →
//!   gateway) propagation delay, and the 15-second reconfiguration
//!   cadence that drives LEO handoffs.
//!
//! Everything here is pure geometry — noise, queueing and loss live in
//! `sno-netsim`.

pub mod access;
pub mod geostationary;
pub mod meo;
pub mod shell;
pub mod vec3;

pub use access::{BentPipe, GeoAccess, MeoAccess, SatelliteAccess, HANDOFF_PERIOD_SECS};
pub use geostationary::GeoSlot;
pub use meo::MeoRing;
pub use shell::{Shell, Visibility, ONEWEB_SHELL, STARLINK_SHELL};
pub use vec3::{ecef_of, Vec3, EARTH_RADIUS_KM};
