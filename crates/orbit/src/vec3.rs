//! Minimal 3-vector algebra in an Earth-centred, Earth-fixed frame.

use sno_geo::GeoPoint;
use sno_types::Kilometers;

/// Earth radius used by the orbital model (spherical Earth), km.
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// Earth's sidereal rotation rate, radians per second.
pub const EARTH_ROTATION_RAD_S: f64 = 7.292_115e-5;

/// Standard gravitational parameter of Earth, km³/s².
pub const MU_EARTH: f64 = 398_600.441_8;

/// A vector in kilometres, ECEF frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    #[allow(clippy::should_implement_trait)] // tiny internal algebra, not a public ops impl
    pub fn sub(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x - other.x, self.y - other.y, self.z - other.z)
    }

    pub fn scale(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    /// Panics in debug builds on the zero vector.
    pub fn unit(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "unit of zero vector");
        self.scale(1.0 / n)
    }

    /// Distance to another point.
    pub fn distance_to(self, other: Vec3) -> Kilometers {
        Kilometers(self.sub(other).norm())
    }
}

/// ECEF position of a point on the (spherical) Earth's surface.
pub fn ecef_of(p: GeoPoint) -> Vec3 {
    let lat = p.lat.to_radians();
    let lon = p.lon.to_radians();
    Vec3::new(
        EARTH_RADIUS_KM * lat.cos() * lon.cos(),
        EARTH_RADIUS_KM * lat.cos() * lon.sin(),
        EARTH_RADIUS_KM * lat.sin(),
    )
}

/// Elevation angle (degrees) of `target` as seen from surface point
/// `observer`: the angle between the line of sight and the local
/// horizontal plane. Negative values mean below the horizon.
pub fn elevation_deg(observer: Vec3, target: Vec3) -> f64 {
    let los = target.sub(observer);
    let up = observer.unit();
    let sin_el = los.unit().dot(up);
    sin_el.asin().to_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_points_have_earth_radius() {
        for (lat, lon) in [(0.0, 0.0), (47.6, -122.3), (-36.85, 174.76), (89.0, 10.0)] {
            let v = ecef_of(GeoPoint::new(lat, lon));
            assert!((v.norm() - EARTH_RADIUS_KM).abs() < 1e-6);
        }
    }

    #[test]
    fn ecef_distance_close_to_haversine_for_nearby_points() {
        let a = GeoPoint::new(47.61, -122.33);
        let b = GeoPoint::new(45.52, -122.68);
        let chord = ecef_of(a).distance_to(ecef_of(b)).0;
        let arc = sno_geo::haversine_km(a, b).0;
        // Chord is slightly shorter than the arc; within 1% here.
        assert!(chord <= arc && arc - chord < arc * 0.01);
    }

    #[test]
    fn zenith_satellite_has_ninety_degree_elevation() {
        let obs = ecef_of(GeoPoint::new(10.0, 20.0));
        let sat = obs.scale((EARTH_RADIUS_KM + 550.0) / EARTH_RADIUS_KM);
        let el = elevation_deg(obs, sat);
        assert!((el - 90.0).abs() < 1e-6, "el {el}");
    }

    #[test]
    fn antipodal_satellite_below_horizon() {
        let obs = ecef_of(GeoPoint::new(0.0, 0.0));
        let sat = ecef_of(GeoPoint::new(0.0, 180.0)).scale(1.1);
        assert!(elevation_deg(obs, sat) < 0.0);
    }

    #[test]
    fn vector_algebra() {
        let a = Vec3::new(1.0, 2.0, 2.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a.unit().norm(), 1.0);
        assert_eq!(a.dot(Vec3::new(1.0, 0.0, 0.0)), 1.0);
        assert_eq!(a.sub(a).norm(), 0.0);
        assert_eq!(a.scale(2.0).norm(), 6.0);
    }
}
