//! Geostationary slots on the Clarke belt.

use crate::vec3::{elevation_deg, Vec3, EARTH_RADIUS_KM};
use sno_types::Kilometers;

/// Geostationary altitude, km.
pub const GEO_ALTITUDE_KM: f64 = 35_786.0;

/// A geostationary satellite parked at a fixed longitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoSlot {
    /// Sub-satellite longitude, degrees east.
    pub lon_deg: f64,
}

impl GeoSlot {
    /// ECEF position (constant — that is the point of GEO).
    pub fn position(&self) -> Vec3 {
        let r = EARTH_RADIUS_KM + GEO_ALTITUDE_KM;
        let lon = self.lon_deg.to_radians();
        Vec3::new(r * lon.cos(), r * lon.sin(), 0.0)
    }

    /// Slant range and elevation from `observer`; `None` when the slot
    /// sits below `min_elevation_deg`.
    pub fn visible_from(
        &self,
        observer: Vec3,
        min_elevation_deg: f64,
    ) -> Option<(Kilometers, f64)> {
        let sat = self.position();
        let el = elevation_deg(observer, sat);
        (el >= min_elevation_deg).then(|| (observer.distance_to(sat), el))
    }
}

/// Choose the best (highest-elevation) slot for an observer from an
/// operator's fleet. `None` when no slot clears the mask.
pub fn best_slot(
    slots: &[GeoSlot],
    observer: Vec3,
    min_elevation_deg: f64,
) -> Option<(GeoSlot, Kilometers, f64)> {
    slots
        .iter()
        .filter_map(|s| {
            s.visible_from(observer, min_elevation_deg)
                .map(|(d, el)| (*s, d, el))
        })
        .max_by(|a, b| a.2.total_cmp(&b.2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::ecef_of;
    use sno_geo::GeoPoint;

    #[test]
    fn subsatellite_point_slant_is_altitude() {
        let slot = GeoSlot { lon_deg: -100.0 };
        let obs = ecef_of(GeoPoint::new(0.0, -100.0));
        let (slant, el) = slot.visible_from(obs, 5.0).unwrap();
        assert!((slant.0 - GEO_ALTITUDE_KM).abs() < 1.0, "slant {slant}");
        assert!((el - 90.0).abs() < 1e-6);
    }

    #[test]
    fn mid_latitude_slant_about_37_500_km() {
        // A US user at 40°N looking at a US GEO slot: ~37,300–37,700 km,
        // i.e. one-way bent-pipe propagation ≈ 250 ms.
        let slot = GeoSlot { lon_deg: -101.0 };
        let obs = ecef_of(GeoPoint::new(40.0, -95.0));
        let (slant, _) = slot.visible_from(obs, 5.0).unwrap();
        assert!((37_000.0..38_200.0).contains(&slant.0), "slant {slant}");
        let one_way = sno_types::Millis::light_over(sno_types::Kilometers(2.0 * slant.0));
        assert!((one_way.0 - 250.0).abs() < 10.0, "one-way {one_way}");
    }

    #[test]
    fn slot_invisible_from_high_latitude() {
        let slot = GeoSlot { lon_deg: 0.0 };
        let obs = ecef_of(GeoPoint::new(82.0, 0.0));
        assert!(slot.visible_from(obs, 10.0).is_none());
    }

    #[test]
    fn slot_invisible_from_far_longitude() {
        let slot = GeoSlot { lon_deg: 0.0 };
        let obs = ecef_of(GeoPoint::new(0.0, 160.0));
        assert!(slot.visible_from(obs, 5.0).is_none());
    }

    #[test]
    fn best_slot_picks_highest_elevation() {
        let slots = [
            GeoSlot { lon_deg: -130.0 },
            GeoSlot { lon_deg: -100.0 },
            GeoSlot { lon_deg: -60.0 },
        ];
        let obs = ecef_of(GeoPoint::new(35.0, -97.0));
        let (chosen, ..) = best_slot(&slots, obs, 10.0).unwrap();
        assert_eq!(chosen.lon_deg, -100.0);
    }

    #[test]
    fn empty_fleet_has_no_slot() {
        let obs = ecef_of(GeoPoint::new(0.0, 0.0));
        assert!(best_slot(&[], obs, 10.0).is_none());
    }
}
