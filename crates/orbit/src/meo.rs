//! The O3b MEO ring.
//!
//! O3b (acquired by SES in 2016) flies an equatorial ring at 8 062 km.
//! Coverage spans roughly ±50° latitude; users track satellites that
//! drift much more slowly than LEO, so handoffs are rare — but when one
//! happens, recovery is harder because the ring is sparse (the paper's
//! explanation for MEO's heavy jitter tail in Figure 4b).

use crate::vec3::{elevation_deg, Vec3, MU_EARTH};
use sno_types::Kilometers;
use std::f64::consts::TAU;

/// An equatorial circular ring of satellites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeoRing {
    /// Altitude above the surface, km.
    pub altitude_km: f64,
    /// Number of satellites, evenly spaced.
    pub sats: u32,
}

/// The O3b ring: 8 062 km, 20 satellites (the fleet size in the study
/// window).
pub const O3B_RING: MeoRing = MeoRing {
    altitude_km: 8_062.0,
    sats: 20,
};

impl MeoRing {
    /// Orbital radius, km.
    pub fn orbit_radius_km(&self) -> f64 {
        crate::vec3::EARTH_RADIUS_KM + self.altitude_km
    }

    /// Orbital period, seconds (about 288 minutes for O3b).
    pub fn period_secs(&self) -> f64 {
        TAU * (self.orbit_radius_km().powi(3) / MU_EARTH).sqrt()
    }

    /// ECEF position of satellite `index` at `t_secs`.
    ///
    /// # Panics
    /// Panics in debug builds when `index` is out of range.
    pub fn sat_position(&self, index: u32, t_secs: f64) -> Vec3 {
        debug_assert!(index < self.sats, "index out of range");
        let a = self.orbit_radius_km();
        // Equatorial ring: position is a longitude that advances at the
        // mean motion minus Earth rotation (ECEF).
        let angle = TAU * f64::from(index) / f64::from(self.sats)
            + (TAU / self.period_secs() - crate::vec3::EARTH_ROTATION_RAD_S) * t_secs;
        Vec3::new(a * angle.cos(), a * angle.sin(), 0.0)
    }

    /// The highest-elevation satellite above `min_elevation_deg` seen
    /// from `observer`, with its slant range. `None` outside the
    /// coverage belt.
    pub fn best_visible(
        &self,
        observer: Vec3,
        t_secs: f64,
        min_elevation_deg: f64,
    ) -> Option<(u32, Kilometers, f64)> {
        let mut best: Option<(u32, Kilometers, f64)> = None;
        for index in 0..self.sats {
            let sat = self.sat_position(index, t_secs);
            let el = elevation_deg(observer, sat);
            if el < min_elevation_deg {
                continue;
            }
            if best.as_ref().is_none_or(|&(_, _, b)| el > b) {
                best = Some((index, observer.distance_to(sat), el));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::ecef_of;
    use sno_geo::GeoPoint;

    #[test]
    fn o3b_period_about_288_minutes() {
        let p = O3B_RING.period_secs() / 60.0;
        assert!((p - 287.9).abs() < 3.0, "period {p} min");
    }

    #[test]
    fn equatorial_user_sees_a_satellite_near_zenith() {
        let obs = ecef_of(GeoPoint::new(0.0, 30.0));
        let (_, slant, el) = O3B_RING.best_visible(obs, 0.0, 10.0).unwrap();
        assert!(el > 60.0, "elevation {el}");
        assert!(slant.0 < 9_500.0, "slant {slant}");
        assert!(slant.0 >= O3B_RING.altitude_km - 1.0);
    }

    #[test]
    fn mid_latitude_covered_polar_not() {
        let mid = ecef_of(GeoPoint::new(45.0, -100.0));
        assert!(O3B_RING.best_visible(mid, 0.0, 10.0).is_some());
        let polar = ecef_of(GeoPoint::new(75.0, 0.0));
        assert!(O3B_RING.best_visible(polar, 0.0, 10.0).is_none());
    }

    #[test]
    fn satellites_drift_slowly() {
        // With 20 satellites spaced 18° and ~1°/min of relative drift,
        // the serving satellite changes roughly every 18 minutes — so a
        // 10-minute window sees at most one handoff.
        let obs = ecef_of(GeoPoint::new(5.0, 10.0));
        let mut changes = 0;
        let mut last = O3B_RING.best_visible(obs, 0.0, 10.0).unwrap().0;
        for t in (1..=20).map(|k| k as f64 * 30.0) {
            let (i, ..) = O3B_RING.best_visible(obs, t, 10.0).unwrap();
            if i != last {
                changes += 1;
                last = i;
            }
        }
        assert!(changes <= 1, "{changes} handoffs in 10 min");
    }

    #[test]
    fn ring_is_equatorial() {
        for i in 0..O3B_RING.sats {
            assert_eq!(O3B_RING.sat_position(i, 1234.0).z, 0.0);
        }
    }
}
