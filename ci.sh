#!/usr/bin/env bash
# Tier-1 gate plus the hermetic-build invariant: everything must build
# and test with --offline, i.e. with zero access to crates.io. See
# README "CI gates" and "Hermetic builds".
set -euo pipefail
cd "$(dirname "$0")"

# Per-stage wall-clock timings, written as machine-readable JSON
# (CI_TIMINGS.json) once every gate is green.
TIMING_NAMES=()
TIMING_SECS=()

# Run a stage: `run <label> <command...>` echoes the full command, times
# it, and records the label for CI_TIMINGS.json.
run() {
    local label=$1
    shift
    echo "==> $*"
    local start=$SECONDS
    "$@"
    local secs=$(( SECONDS - start ))
    echo "    (${label} took ${secs}s)"
    TIMING_NAMES+=("$label")
    TIMING_SECS+=("$secs")
}

# Hand-rolled JSON, mirroring the BenchReport writer: no external
# dependencies, stable key order, one stage object per line.
write_timings() {
    local out=CI_TIMINGS.json
    {
        echo '{'
        echo '  "version": "sno-ci-timings-v1",'
        echo '  "stages": ['
        local i last=$(( ${#TIMING_NAMES[@]} - 1 ))
        for i in "${!TIMING_NAMES[@]}"; do
            local comma=','
            (( i == last )) && comma=''
            printf '    {"stage": "%s", "seconds": %s}%s\n' \
                "${TIMING_NAMES[$i]}" "${TIMING_SECS[$i]}" "$comma"
        done
        echo '  ]'
        echo '}'
    } > "$out"
    echo "wrote $out"
}

run build cargo build --release --offline
run test cargo test -q --offline --workspace
run examples cargo build --examples --offline
run benches cargo build --benches --offline -p sno-bench
run fmt cargo fmt --check
run clippy cargo clippy --offline --workspace --all-targets -- -D warnings

# Lint gate: the in-tree determinism & hermeticity pass (sno-lint).
# Fails on any diagnostic not excused by a justified allow pragma, and
# ratchets the justified-suppression ledger: the machine-readable report
# lands in target/lint-report.json (gitignored) and its per-rule counts
# are diffed against the committed tests/corpora/lint_baseline.json —
# any increase fails the stage and prints the delta. Shrinking a count
# is fine; re-bless by regenerating the baseline with `sno-lint --json`.
run lint bash -c \
    'cargo run --release --offline -p sno-lint --bin sno-lint -- \
         --json --baseline tests/corpora/lint_baseline.json \
         > target/lint-report.json'

# Perf gate: diff the two newest committed BENCH_N.json trajectory
# snapshots and fail on >20% median regressions (repro --bench-diff),
# after dividing out the machine-speed drift the calibration/spin
# bench measures (snapshots land on whatever box CI gets; baselines
# without the calibration bench are compared advisorily only). The
# same pass enforces the absolute per-bench budgets (fig4a must stay
# under 100 ms) against the newest snapshot, so ten successive
# just-under-20% regressions cannot quietly compound past the ceiling.
# Throughput benches (sessions/second) gate on the same pass but in
# the other direction: they fail when the drift-corrected rate drops
# more than 20%. Skipped until at least two snapshots exist.
mapfile -t snapshots < <(ls BENCH_*.json 2>/dev/null | sort -V)
if (( ${#snapshots[@]} >= 2 )); then
    run perf-gate cargo run --release --offline -p sno-bench --bin repro -- \
        --bench-diff "${snapshots[-2]}" "${snapshots[-1]}"
else
    echo "==> perf gate skipped (fewer than two BENCH_*.json snapshots)"
fi

# Online-equivalence gate: drive the corpus chunk-by-chunk through the
# incremental OnlineIdentifier, then run the batch streamed pipeline
# over the same corpus and fail on any verdict mismatch (acceptance
# bits, catalog, thresholds, per-operator latencies, rendered report).
# Also snapshots again after compact() and fails if the compacted log
# diverges from the batch run. The steady-state snapshot latency itself
# is budgeted in the perf gate above: BUDGETS in repro.rs caps
# online_snapshot_steady (the incremental, post-warm-up snapshot) at an
# absolute ceiling, so snapshot() silently regressing back to
# O(corpus) full replay fails CI even without a baseline to diff.
run online-gate cargo run --release --offline -p sno-bench --bin repro -- \
    --online --verify-batch --scale 2e-3

# Sim gate: the deterministic fault-injection campaign. Replays the
# committed failure corpus first, then SNO_CI_SEEDS fresh seeds; any
# failure prints a `repro --sim-sweep --seed <S>` replay line.
run sim-gate cargo run --release --offline -p sno-bench --bin repro -- \
    --sim-sweep --seeds "${SNO_CI_SEEDS:-32}" --quick

# Memory gate: the streamed pipeline must stay bounded at a dense
# corpus. The ceiling (24 MiB of address space) is ~2x the streamed
# run's measured peak and well below the ~35 MiB the materialized path
# needs at this scale, so accidentally materializing the corpus inside
# the streamed path trips the limit. ulimit lives in the child shell
# so it does not leak into later stages.
run memory-gate bash -c \
    'ulimit -v 24576; exec ./target/release/repro table1 --scale 2e-2 --chunk 4096 >/dev/null'

# Paper-scale gate: the streamed pipeline drives a paper-sized corpus
# end to end — chunked generation, parallel two-pass identification,
# heartbeats for liveness — under a wall-clock budget (timeout) and an
# address-space ceiling sized at ~2x the measured run (see README "CI
# gates" for the numbers). Routine CI runs SNO_CI_SCALE=1e-1 (measured
# 113 s wall / 40 MB address-space peak on the 1-core reference box);
# nightly runs the full paper volume (measured 1107 s / 278 MB) with
#   SNO_CI_SCALE=1 SNO_CI_BUDGET_S=2400 SNO_CI_ULIMIT_KB=573440 ./ci.sh
SNO_CI_SCALE="${SNO_CI_SCALE:-1e-1}"
SNO_CI_BUDGET_S="${SNO_CI_BUDGET_S:-600}"
SNO_CI_ULIMIT_KB="${SNO_CI_ULIMIT_KB:-81920}"
run paper-scale-gate bash -c \
    "ulimit -v ${SNO_CI_ULIMIT_KB}; exec timeout ${SNO_CI_BUDGET_S} \
     ./target/release/repro table1 --scale ${SNO_CI_SCALE} --chunk 4096 --progress 2000000 >/dev/null"

write_timings
echo "ci: all green (hermetic)"
