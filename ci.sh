#!/usr/bin/env bash
# Tier-1 gate plus the hermetic-build invariant: everything must build
# and test with --offline, i.e. with zero access to crates.io. See
# README "CI gates" and "Hermetic builds".
set -euo pipefail
cd "$(dirname "$0")"

# Run a stage, echoing the command and its wall-clock time.
run() {
    echo "==> $*"
    local start=$SECONDS
    "$@"
    echo "    (${*:1:2} took $(( SECONDS - start ))s)"
}

run cargo build --release --offline
run cargo test -q --offline --workspace
run cargo build --examples --offline
run cargo build --benches --offline -p sno-bench
run cargo fmt --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

# Lint gate: the in-tree determinism & hermeticity pass (sno-lint).
# Fails on any diagnostic not excused by a justified allow pragma and
# prints the replay line; see README "CI gates" for the rule table.
run cargo run --release --offline -p sno-bench --bin repro -- --lint

# Perf gate: diff the two newest committed BENCH_N.json trajectory
# snapshots and fail on >20% median regressions (repro --bench-diff),
# after dividing out the machine-speed drift the calibration/spin
# bench measures (snapshots land on whatever box CI gets; baselines
# without the calibration bench are compared advisorily only). The
# same pass enforces the absolute per-bench budgets (fig4a must stay
# under 100 ms) against the newest snapshot, so ten successive
# just-under-20% regressions cannot quietly compound past the ceiling.
# Skipped until at least two snapshots exist.
mapfile -t snapshots < <(ls BENCH_*.json 2>/dev/null | sort -V)
if (( ${#snapshots[@]} >= 2 )); then
    run cargo run --release --offline -p sno-bench --bin repro -- \
        --bench-diff "${snapshots[-2]}" "${snapshots[-1]}"
else
    echo "==> perf gate skipped (fewer than two BENCH_*.json snapshots)"
fi

# Online-equivalence gate: drive the corpus chunk-by-chunk through the
# incremental OnlineIdentifier, then run the batch streamed pipeline
# over the same corpus and fail on any verdict mismatch (acceptance
# bits, catalog, thresholds, per-operator latencies, rendered report).
run cargo run --release --offline -p sno-bench --bin repro -- \
    --online --verify-batch --scale 2e-3

# Sim gate: the deterministic fault-injection campaign. Replays the
# committed failure corpus first, then SNO_CI_SEEDS fresh seeds; any
# failure prints a `repro --sim-sweep --seed <S>` replay line.
run cargo run --release --offline -p sno-bench --bin repro -- \
    --sim-sweep --seeds "${SNO_CI_SEEDS:-32}" --quick

# Memory gate: the streamed pipeline must stay constant-memory at a
# paper-scale corpus. The ceiling (24 MiB of address space) is ~2x the
# streamed run's measured peak and well below the ~35 MiB the
# materialized path needs at this scale, so accidentally materializing
# the corpus inside the streamed path trips the limit. Runs in a
# subshell so the ulimit does not leak into later stages.
echo "==> memory gate: repro table1 --scale 2e-2 --chunk 4096 under ulimit -v 24576"
mem_start=$SECONDS
( ulimit -v 24576; exec ./target/release/repro table1 --scale 2e-2 --chunk 4096 >/dev/null )
echo "    (memory gate took $(( SECONDS - mem_start ))s)"

echo "ci: all green (hermetic)"
