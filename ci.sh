#!/usr/bin/env bash
# Tier-1 gate plus the hermetic-build invariant: everything must build
# and test with --offline, i.e. with zero access to crates.io. See
# README "Hermetic builds".
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline
run cargo test -q --offline --workspace
run cargo build --examples --offline
run cargo build --benches --offline -p sno-bench
run cargo fmt --check

echo "ci: all green (hermetic)"
