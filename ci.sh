#!/usr/bin/env bash
# Tier-1 gate plus the hermetic-build invariant: everything must build
# and test with --offline, i.e. with zero access to crates.io. See
# README "Hermetic builds".
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline
run cargo test -q --offline --workspace
run cargo build --examples --offline
run cargo build --benches --offline -p sno-bench
run cargo fmt --check

# Perf gate: diff the two newest committed BENCH_N.json trajectory
# snapshots and fail on >20% median regressions (repro --bench-diff).
# Skipped until at least two snapshots exist.
mapfile -t snapshots < <(ls BENCH_*.json 2>/dev/null | sort -V)
if (( ${#snapshots[@]} >= 2 )); then
    run cargo run --release --offline -p sno-bench --bin repro -- \
        --bench-diff "${snapshots[-2]}" "${snapshots[-1]}"
else
    echo "==> perf gate skipped (fewer than two BENCH_*.json snapshots)"
fi

echo "ci: all green (hermetic)"
